// Tests for the perf-critical data structures and the parallel sweep:
//
//   - ProcessSet's inline-bitset fast paths pinned to a std::set model
//     on randomized inputs straddling the 256-id boundary, so the bitset
//     and sorted-vector representations can never diverge silently;
//   - EventQueue tombstone cancellation and the drained-vs-event-limit
//     distinction of drain();
//   - the sweep runner's determinism contract: index-ordered results,
//     identical output at any thread count (including the full E1
//     trace.json byte-for-byte through a 4-thread pool), and exception
//     propagation;
//   - trace_json_string as a byte-identical fast path for
//     trace_to_json(...).dump().
#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "harness/trace_replay.hpp"
#include "sim/event_queue.hpp"
#include "util/inline_function.hpp"
#include "util/process_set.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

// ---------------------------------------------------------------------------
// ProcessSet: bitset fast paths vs a std::set<uint32_t> model.

using Model = std::set<std::uint32_t>;

ProcessSet from_model(const Model& m) {
  ProcessSet s;
  for (const std::uint32_t id : m) s.insert(ProcessId(id));
  return s;
}

/// Random model set. `max_id` above ProcessSet::kSmallIdLimit produces
/// sets that straddle the inline boundary (dynamic extension words);
/// above kDynamicIdLimit they straddle the word-wise limit entirely,
/// forcing the sorted-vector fallback.
Model random_model(Rng& rng, std::uint32_t max_id) {
  Model m;
  const std::uint64_t count = rng.next_below(12);
  for (std::uint64_t i = 0; i < count; ++i) {
    // Concentrate a quarter of the draws just below max_id so the
    // boundary tiers actually produce members past the boundary they
    // probe (a uniform draw over [0, 2^20) almost never lands there).
    const bool high = max_id > 64 && rng.next_below(4) == 0;
    const std::uint32_t id =
        high ? max_id - 1 - static_cast<std::uint32_t>(rng.next_below(64))
             : static_cast<std::uint32_t>(rng.next_below(max_id));
    m.insert(id);
  }
  return m;
}

Model model_union(const Model& a, const Model& b) {
  Model out = a;
  out.insert(b.begin(), b.end());
  return out;
}

Model model_intersection(const Model& a, const Model& b) {
  Model out;
  for (const std::uint32_t id : a) {
    if (b.count(id) != 0) out.insert(id);
  }
  return out;
}

Model model_difference(const Model& a, const Model& b) {
  Model out;
  for (const std::uint32_t id : a) {
    if (b.count(id) == 0) out.insert(id);
  }
  return out;
}

void expect_matches_model(const ProcessSet& s, const Model& m) {
  ASSERT_EQ(s.size(), m.size());
  auto it = m.begin();
  for (const ProcessId p : s) {
    EXPECT_EQ(p.value(), *it) << "iteration order diverged from the model";
    ++it;
  }
  const bool all_small = std::all_of(m.begin(), m.end(), [](std::uint32_t id) {
    return id < ProcessSet::kSmallIdLimit;
  });
  const bool all_dynamic =
      std::all_of(m.begin(), m.end(), [](std::uint32_t id) {
        return id < ProcessSet::kDynamicIdLimit;
      });
  EXPECT_EQ(s.uses_inline_bits(), all_small);
  EXPECT_EQ(s.uses_bitset(), all_dynamic);
  if (m.empty()) {
    EXPECT_FALSE(s.max_member().has_value());
  } else {
    ASSERT_TRUE(s.max_member().has_value());
    EXPECT_EQ(s.max_member()->value(), *m.rbegin());
  }
}

TEST(ProcessSetProperty, PredicatesAgreeWithModelAcrossTheBitsetBoundary) {
  Rng rng(20260805);
  // max_id 40: pure-inline pairs. 320: pairs straddling kSmallIdLimit
  // (mixed inline/extension widths, still word-wise). 2000: four-digit
  // ids across multiple extension words. 5000: wide enough (> 32
  // extension words on both operands) that intersection_size dispatches
  // to the detail::intersect_popcount kernel — on AVX2 hardware this
  // round pins the vector kernel to the model. kDynamicIdLimit + 300:
  // pairs where one or both sets hold a huge id and take the merge-walk
  // fallback, including mixed fast/slow operand pairs.
  for (const std::uint32_t max_id :
       {40u, 320u, 2000u, 5000u, ProcessSet::kDynamicIdLimit + 300u}) {
    for (int round = 0; round < 500; ++round) {
      const Model ma = random_model(rng, max_id);
      const Model mb = random_model(rng, max_id);
      const ProcessSet a = from_model(ma);
      const ProcessSet b = from_model(mb);
      expect_matches_model(a, ma);
      expect_matches_model(b, mb);

      EXPECT_EQ(a.intersection_size(b), model_intersection(ma, mb).size());
      EXPECT_EQ(a.intersects(b), !model_intersection(ma, mb).empty());
      EXPECT_EQ(a.is_subset_of(b),
                std::includes(mb.begin(), mb.end(), ma.begin(), ma.end()));
      EXPECT_EQ(a.contains_majority_of(b),
                2 * model_intersection(ma, mb).size() > mb.size());
      // The empty-set guard: exact-half of nothing is false, not vacuous.
      EXPECT_EQ(a.contains_exact_half_of(b),
                !mb.empty() &&
                    2 * model_intersection(ma, mb).size() == mb.size());
      for (const std::uint32_t probe : {std::uint32_t{0}, max_id / 2, max_id}) {
        EXPECT_EQ(a.contains(ProcessId(probe)), ma.count(probe) != 0);
      }

      expect_matches_model(a.set_union(b), model_union(ma, mb));
      expect_matches_model(a.set_intersection(b), model_intersection(ma, mb));
      expect_matches_model(a.set_difference(b), model_difference(ma, mb));
    }
  }
}

TEST(ProcessSetProperty, InsertEraseMaintainTheBitsetIncrementally) {
  Rng rng(77);
  Model m;
  ProcessSet s;
  for (int step = 0; step < 3000; ++step) {
    // Cross both representation boundaries in both directions: inserting
    // an id >= kSmallIdLimit must grow the extension words, inserting an
    // id >= kDynamicIdLimit must drop the set to the merge-walk
    // representation, and erasing the last id past each boundary must
    // restore the faster representation.
    std::uint32_t id;
    const std::uint64_t tier = rng.next_below(8);
    if (tier < 5) {
      id = static_cast<std::uint32_t>(rng.next_below(300));
    } else if (tier < 7) {
      id = static_cast<std::uint32_t>(256 + rng.next_below(1200));
    } else {
      id = ProcessSet::kDynamicIdLimit - 2 +
           static_cast<std::uint32_t>(rng.next_below(4));
    }
    if (rng.next_bool(0.6)) {
      EXPECT_EQ(s.insert(ProcessId(id)), m.insert(id).second);
    } else {
      EXPECT_EQ(s.erase(ProcessId(id)), m.erase(id) != 0);
    }
    expect_matches_model(s, m);
  }
}

TEST(ProcessSetProperty, MixedWidthPairsKeepTheWordWiseFastPath) {
  // Regression for the mixed-representation degradation: one operand
  // holding a single id >= kSmallIdLimit used to force BOTH operands of
  // every predicate onto the O(n) merge walk. Both operands must stay on
  // the bitset, and the predicates must agree with first principles.
  ProcessSet small = ProcessSet::of({1, 3, 200});
  ProcessSet wide = ProcessSet::of({1, 3, 200, 1000});
  EXPECT_TRUE(small.uses_bitset());
  EXPECT_TRUE(small.uses_inline_bits());
  EXPECT_TRUE(wide.uses_bitset());
  EXPECT_FALSE(wide.uses_inline_bits());

  EXPECT_EQ(small.intersection_size(wide), 3u);
  EXPECT_EQ(wide.intersection_size(small), 3u);
  EXPECT_TRUE(small.is_subset_of(wide));
  EXPECT_FALSE(wide.is_subset_of(small));
  EXPECT_TRUE(small.intersects(wide));
  EXPECT_TRUE(wide.contains_majority_of(small));
  EXPECT_FALSE(ProcessSet::of({1000}).contains_majority_of(small));
}

TEST(ProcessSetProperty, ErasingTheLastBigIdRestoresTheInlinePath) {
  // The satellite regression pinning uses_bitset()/uses_inline_bits()
  // across the 256 boundary: insert big id -> erase it -> fast path
  // restored, with no stale extension words left behind.
  ProcessSet s = ProcessSet::of({0, 5, 255});
  EXPECT_TRUE(s.uses_inline_bits());
  EXPECT_TRUE(s.insert(ProcessId(256)));
  EXPECT_FALSE(s.uses_inline_bits());
  EXPECT_TRUE(s.uses_bitset());
  EXPECT_TRUE(s.insert(ProcessId(4096)));
  EXPECT_TRUE(s.erase(ProcessId(4096)));
  EXPECT_FALSE(s.uses_inline_bits()) << "p256 still holds an extension word";
  EXPECT_TRUE(s.erase(ProcessId(256)));
  EXPECT_TRUE(s.uses_inline_bits()) << "last big id erased";
  EXPECT_EQ(s, ProcessSet::of({0, 5, 255}));

  // Same round trip across the kDynamicIdLimit boundary.
  EXPECT_TRUE(s.insert(ProcessId(ProcessSet::kDynamicIdLimit)));
  EXPECT_FALSE(s.uses_bitset());
  EXPECT_TRUE(s.erase(ProcessId(ProcessSet::kDynamicIdLimit)));
  EXPECT_TRUE(s.uses_bitset());
  EXPECT_TRUE(s.uses_inline_bits());
  EXPECT_EQ(s, ProcessSet::of({0, 5, 255}));
}

TEST(ProcessSetProperty, MixedRepresentationPairsAgreeAtTheMergeWalkBoundary) {
  // The >= 2^20 mirror of MixedWidthPairsKeepTheWordWiseFastPath: one
  // operand holds a huge id (sorted-vector merge-walk representation),
  // the other stays on the bitset. Every predicate must agree with first
  // principles in both argument orders, and the representations must be
  // what the tier design says they are.
  const std::uint32_t huge_id = ProcessSet::kDynamicIdLimit + 7;
  ProcessSet bitset_side = ProcessSet::of({1, 3, 200, 1000});
  ProcessSet huge_side = ProcessSet::of({1, 3, 200, 1000});
  huge_side.insert(ProcessId(huge_id));
  EXPECT_TRUE(bitset_side.uses_bitset());
  EXPECT_FALSE(huge_side.uses_bitset());

  EXPECT_EQ(bitset_side.intersection_size(huge_side), 4u);
  EXPECT_EQ(huge_side.intersection_size(bitset_side), 4u);
  EXPECT_TRUE(bitset_side.is_subset_of(huge_side));
  EXPECT_FALSE(huge_side.is_subset_of(bitset_side));
  EXPECT_TRUE(bitset_side.intersects(huge_side));
  EXPECT_TRUE(huge_side.contains(ProcessId(huge_id)));
  EXPECT_FALSE(bitset_side.contains(ProcessId(huge_id)));
  EXPECT_TRUE(huge_side.contains_majority_of(bitset_side));
  // {huge} alone intersects nothing below the boundary.
  ProcessSet lone_huge;
  lone_huge.insert(ProcessId(huge_id));
  EXPECT_FALSE(lone_huge.intersects(bitset_side));
  EXPECT_FALSE(lone_huge.contains_majority_of(bitset_side));
  EXPECT_TRUE(lone_huge.is_subset_of(huge_side));

  // Set algebra across mixed representations lands on the model answer.
  const ProcessSet both = bitset_side.set_union(huge_side);
  EXPECT_EQ(both.size(), 5u);
  EXPECT_FALSE(both.uses_bitset());
  EXPECT_EQ(bitset_side.set_intersection(huge_side), bitset_side);
  EXPECT_EQ(huge_side.set_difference(bitset_side), lone_huge);
  // Dropping the huge id from a union restores the bitset tier.
  ProcessSet back = both;
  EXPECT_TRUE(back.erase(ProcessId(huge_id)));
  EXPECT_TRUE(back.uses_bitset());
  EXPECT_EQ(back, bitset_side);
}

TEST(ProcessSetProperty, HugeTierWorkloadAgreesWithModel) {
  // Pure merge-walk property run: both operands routinely carry ids far
  // beyond kDynamicIdLimit (up to 4x), interleaved with small ids so the
  // merge walk constantly crosses the boundary inside one operand.
  Rng rng(20260809);
  const std::uint32_t max_id = ProcessSet::kDynamicIdLimit * 4;
  for (int round = 0; round < 300; ++round) {
    Model ma = random_model(rng, max_id);
    Model mb = random_model(rng, max_id);
    // Force genuine boundary straddles: give each side one id on each
    // side of the limit half the time.
    if (rng.next_bool(0.5)) {
      ma.insert(ProcessSet::kDynamicIdLimit +
                static_cast<std::uint32_t>(rng.next_below(64)));
      ma.insert(static_cast<std::uint32_t>(rng.next_below(64)));
    }
    if (rng.next_bool(0.5)) {
      mb.insert(ProcessSet::kDynamicIdLimit - 1 -
                static_cast<std::uint32_t>(rng.next_below(64)));
      mb.insert(ProcessSet::kDynamicIdLimit +
                static_cast<std::uint32_t>(rng.next_below(64)));
    }
    const ProcessSet a = from_model(ma);
    const ProcessSet b = from_model(mb);
    expect_matches_model(a, ma);
    expect_matches_model(b, mb);
    EXPECT_EQ(a.intersection_size(b), model_intersection(ma, mb).size());
    EXPECT_EQ(a.intersects(b), !model_intersection(ma, mb).empty());
    EXPECT_EQ(a.is_subset_of(b),
              std::includes(mb.begin(), mb.end(), ma.begin(), ma.end()));
    EXPECT_EQ(a.contains_majority_of(b),
              2 * model_intersection(ma, mb).size() > mb.size());
    EXPECT_EQ(a.contains_exact_half_of(b),
              !mb.empty() && 2 * model_intersection(ma, mb).size() == mb.size());
    expect_matches_model(a.set_union(b), model_union(ma, mb));
    expect_matches_model(a.set_intersection(b), model_intersection(ma, mb));
    expect_matches_model(a.set_difference(b), model_difference(ma, mb));
  }
}

TEST(ProcessSetProperty, DegenerateQuorumPredicatesAreNotVacuouslyTrue) {
  // Paper 4.1's clause 2b splits a real previous quorum in half; an
  // empty `of` must not satisfy either succession predicate (2*0 == 0
  // used to make contains_exact_half_of vacuously true).
  const ProcessSet empty;
  const ProcessSet some = ProcessSet::of({0, 1, 2});
  EXPECT_FALSE(some.contains_exact_half_of(empty));
  EXPECT_FALSE(some.contains_majority_of(empty));
  EXPECT_FALSE(empty.contains_exact_half_of(empty));
  EXPECT_FALSE(empty.contains_majority_of(empty));
  // Nonempty halves still work.
  EXPECT_TRUE(ProcessSet::of({0, 1}).contains_exact_half_of(
      ProcessSet::of({0, 1, 2, 3})));
  EXPECT_FALSE(empty.contains_exact_half_of(ProcessSet::of({0, 1})));
}

// ---------------------------------------------------------------------------
// InlineFunction: the cache-line budget of the event-queue hot path.

TEST(InlineFunctionSize, EventQueueEntryIsExactlyTwoCacheLines) {
  // The SBO capacity is chosen so time (8) + token (8) + action (112)
  // pack one event entry into exactly two cache lines. Any change to
  // kInlineFunctionDefaultCapacity or the dispatch-pointer layout that
  // breaks this budget must be a conscious decision, not drift.
  EXPECT_EQ(kInlineFunctionDefaultCapacity, 88u);
  EXPECT_EQ(sizeof(InlineFunction<void()>),
            kInlineFunctionDefaultCapacity + 3 * sizeof(void (*)()));
  EXPECT_EQ(sizeof(InlineFunction<void()>), 112u);
  EXPECT_EQ(alignof(InlineFunction<void()>), alignof(std::max_align_t));
  // The queue's Action is the default-capacity type (not a wider
  // specialization), so sim::TimerAction forwards into it without
  // re-wrapping.
  EXPECT_EQ(sizeof(sim::EventQueue::Action), sizeof(InlineFunction<void()>));
}

TEST(InlineFunctionSize, DeliverySizedCaptureFitsAndOversizedBoxWorks) {
  // The hot delivery closure (~64 bytes of capture) must fit the SBO;
  // an oversized capture must still work through the heap box, and both
  // must survive the relocate path (EventQueue moves entries on heap
  // sift). Behavior check — allocation counting would be brittle here.
  struct Delivery {
    unsigned char payload[64];
  };
  static_assert(sizeof(Delivery) <= kInlineFunctionDefaultCapacity);
  Delivery d{};
  d.payload[0] = 42;
  InlineFunction<int()> inline_fn = [d] { return int{d.payload[0]}; };
  InlineFunction<int()> moved = std::move(inline_fn);
  EXPECT_FALSE(static_cast<bool>(inline_fn));
  EXPECT_EQ(moved(), 42);

  struct Oversized {
    unsigned char payload[256];
  };
  static_assert(sizeof(Oversized) > kInlineFunctionDefaultCapacity);
  Oversized big{};
  big.payload[200] = 7;
  InlineFunction<int()> boxed = [big] { return int{big.payload[200]}; };
  InlineFunction<int()> boxed_moved = std::move(boxed);
  EXPECT_EQ(boxed_moved(), 7);
}

// ---------------------------------------------------------------------------
// EventQueue: tombstones and the drain() status.

TEST(EventQueuePerf, CancelledEventsNeverRun) {
  sim::EventQueue q;
  std::vector<int> order;
  const sim::EventToken a = q.schedule_at(10, [&] { order.push_back(1); });
  const sim::EventToken b = q.schedule_at(20, [&] { order.push_back(2); });
  q.schedule_at(30, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(b));
  EXPECT_FALSE(q.cancel(b)) << "second cancel of the same token";
  EXPECT_EQ(q.pending(), 2u);
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_FALSE(q.cancel(a)) << "cancel after the event ran";
}

TEST(EventQueuePerf, DrainDistinguishesEventLimitFromDrained) {
  sim::EventQueue q;
  // A self-rescheduling event: each run schedules the next, so the queue
  // never drains on its own.
  std::function<void()> reschedule = [&] { q.schedule_after(1, [&] { reschedule(); }); };
  q.schedule_at(0, [&] { reschedule(); });

  const auto limited = q.drain(/*max_events=*/100);
  EXPECT_EQ(limited.executed, 100u);
  EXPECT_EQ(limited.status, sim::EventQueue::DrainStatus::kEventLimit);
  EXPECT_FALSE(q.empty()) << "the runaway schedule still has work pending";

  // Stop the cascade, then the queue must report a genuine drain.
  reschedule = [] {};
  const auto drained = q.drain();
  EXPECT_EQ(drained.status, sim::EventQueue::DrainStatus::kDrained);
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Sweep runner.

TEST(Sweep, ResultsLandInIndexOrderAtAnyThreadCount) {
  const auto square = [](std::size_t i) { return i * i; };
  const auto serial = sweep_map<std::size_t>(64, 1, square);
  const auto pooled = sweep_map<std::size_t>(64, 4, square);
  ASSERT_EQ(serial.size(), 64u);
  EXPECT_EQ(serial, pooled);
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], i * i);
}

TEST(Sweep, WorkerExceptionsPropagateToTheCaller) {
  EXPECT_THROW(
      sweep_run(16, 4,
                [](std::size_t i) {
                  if (i == 7) throw std::runtime_error("cell 7 failed");
                }),
      std::runtime_error);
}

TEST(Sweep, ZeroJobsIsANoOp) {
  sweep_run(0, 4, [](std::size_t) { FAIL() << "no job should run"; });
}

// ---------------------------------------------------------------------------
// E1 through the sweep pool: byte-identical traces.

std::string run_e1_trace(ProtocolKind kind) {
  ClusterOptions options;
  options.kind = kind;
  options.n = 5;
  options.sim.seed = 2026;
  options.trace_messages = true;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2),
                 kind == ProtocolKind::kNaiveDynamic ? "dv.info" : "dv.attempt",
                 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  return trace_json_string(cluster.trace_meta(), cluster.sim().trace());
}

TEST(SweepDeterminism, E1TraceJsonIsByteIdenticalThroughTheParallelSweep) {
  const std::vector<ProtocolKind> kinds = {
      ProtocolKind::kNaiveDynamic, ProtocolKind::kBasic,
      ProtocolKind::kOptimized, ProtocolKind::kBasic,
      ProtocolKind::kOptimized, ProtocolKind::kNaiveDynamic,
  };
  const auto job = [&](std::size_t i) { return run_e1_trace(kinds[i]); };
  const auto serial = sweep_map<std::string>(kinds.size(), 1, job);
  const auto pooled = sweep_map<std::string>(kinds.size(), 4, job);
  const auto pooled_again = sweep_map<std::string>(kinds.size(), 4, job);
  EXPECT_EQ(serial, pooled);
  EXPECT_EQ(pooled, pooled_again);
  // Same protocol, same seed => same trace, even from different workers.
  EXPECT_EQ(serial[1], serial[3]);
  EXPECT_EQ(serial[2], serial[4]);
  EXPECT_FALSE(serial[0].empty());
}

// ---------------------------------------------------------------------------
// trace_json_string: the no-tree export path.

TEST(TraceExport, DirectStringMatchesTreeDumpByteForByte) {
  for (const ProtocolKind kind :
       {ProtocolKind::kBasic, ProtocolKind::kOptimized,
        ProtocolKind::kCentralized, ProtocolKind::kThreePhaseRecovery}) {
    ClusterOptions options;
    options.kind = kind;
    options.n = 6;
    options.sim.seed = 31;
    options.trace_messages = true;
    Cluster cluster(options);
    cluster.partition({ProcessSet::of({0, 1, 2, 3}), ProcessSet::of({4, 5})});
    cluster.settle();
    cluster.partition({ProcessSet::of({0, 5}), ProcessSet::of({1, 2, 3, 4})});
    cluster.settle();
    const std::string direct =
        trace_json_string(cluster.trace_meta(), cluster.sim().trace());
    const std::string via_tree =
        trace_to_json(cluster.trace_meta(), cluster.sim().trace()).dump();
    EXPECT_EQ(direct, via_tree);
    // And the loader accepts it: export -> load -> export round-trips.
    const TraceMetaAndEvents loaded = load_trace_json(direct);
    EXPECT_EQ(loaded.events.size(),
              cluster.sim().trace().events().size());
  }
}

}  // namespace
}  // namespace dynvote
