// Unit tests: the Sub_Quorum predicate (paper 4.1 / 6), linear order
// tie-breaks, Min_Quorum floor, the unconditional clause, and the
// participant tracker of section 6 — including the paper's stated
// predicate properties as parameterized sweeps.
#include <gtest/gtest.h>

#include "quorum/linear_order.hpp"
#include "quorum/participants.hpp"
#include "quorum/sub_quorum.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

const ProcessSet kCore5 = ProcessSet::range(5);

TEST(LinearOrder, TieBreakFavorsHalfWithTopMember) {
  const auto S = ProcessSet::of({0, 1, 2, 3});
  EXPECT_TRUE(tie_break_favors(S, ProcessSet::of({2, 3})));
  EXPECT_FALSE(tie_break_favors(S, ProcessSet::of({0, 1})));
  EXPECT_TRUE(tie_break_favors(S, ProcessSet::of({3, 9})));
  EXPECT_FALSE(tie_break_favors(ProcessSet{}, ProcessSet::of({1})));
}

TEST(SubQuorum, MajorityOfPreviousQuorumSuffices) {
  const QuorumCalculus calc(kCore5, 1);
  EXPECT_TRUE(calc.sub_quorum(ProcessSet::of({0, 1, 2}), ProcessSet::of({0, 1})));
  EXPECT_TRUE(calc.sub_quorum(kCore5, ProcessSet::of({0, 1, 2})));
  EXPECT_FALSE(calc.sub_quorum(kCore5, ProcessSet::of({0, 1})));
}

TEST(SubQuorum, ExactHalfNeedsTopRankedMember) {
  const QuorumCalculus calc(kCore5, 1);
  const auto S = ProcessSet::of({0, 1, 2, 3});
  EXPECT_TRUE(calc.sub_quorum(S, ProcessSet::of({2, 3})));   // has p3 = max(S)
  EXPECT_FALSE(calc.sub_quorum(S, ProcessSet::of({0, 1})));  // lacks p3
  EXPECT_FALSE(calc.sub_quorum(S, ProcessSet::of({1, 2})));  // lacks p3
}

TEST(SubQuorum, SingletonChainIsLegalWithMinQuorumOne) {
  const QuorumCalculus calc(kCore5, 1);
  EXPECT_TRUE(calc.sub_quorum(ProcessSet::of({4}), ProcessSet::of({4})));
  EXPECT_TRUE(calc.sub_quorum(ProcessSet::of({3, 4}), ProcessSet::of({4})));
  EXPECT_FALSE(calc.sub_quorum(ProcessSet::of({3, 4}), ProcessSet::of({3})));
}

TEST(SubQuorum, InfinityHasNoSubQuorum) {
  const QuorumCalculus calc(kCore5, 1);
  EXPECT_FALSE(calc.sub_quorum(std::nullopt, kCore5));
  EXPECT_FALSE(calc.sub_quorum(std::nullopt, ProcessSet::of({0})));
}

TEST(SubQuorum, DegenerateEmptyPreviousQuorumGrantsNoSuccession) {
  // The paper-4.1 tie-break (clause 2b) splits a REAL previous quorum in
  // half. An empty S used to satisfy contains_exact_half_of vacuously
  // (2*0 == 0); the succession clauses must all fail for it, so the only
  // way past an empty history is the unconditional clause 2c.
  const QuorumCalculus calc(kCore5, 2);
  const ProcessSet empty;
  // Meets the Min_Quorum floor but neither succession clause vs empty S,
  // and is too small for the unconditional clause (2 + 2 <= 5).
  const ProcessSet T = ProcessSet::of({3, 4});
  EXPECT_FALSE(T.contains_majority_of(empty));
  EXPECT_FALSE(T.contains_exact_half_of(empty));
  EXPECT_FALSE(tie_break_favors(empty, T));
  EXPECT_FALSE(calc.sub_quorum(empty, T));
  // A component big enough for clause 2c still proceeds regardless of
  // the degenerate history — that clause is defined to ignore it.
  EXPECT_TRUE(calc.sub_quorum(empty, ProcessSet::of({0, 1, 2, 3})));
}

TEST(SubQuorum, MinQuorumFloorBlocksSmallGroups) {
  const QuorumCalculus calc(kCore5, 3);
  // {3,4} is a majority of {2,3,4} but below the Min_Quorum floor.
  EXPECT_FALSE(calc.sub_quorum(ProcessSet::of({2, 3, 4}), ProcessSet::of({3, 4})));
  EXPECT_TRUE(
      calc.sub_quorum(ProcessSet::of({2, 3, 4}), ProcessSet::of({2, 3, 4})));
}

TEST(SubQuorum, UnconditionalClauseOverridesHistory) {
  // Min_Quorum = 2, n = 5: any T with |T ∩ W0| > 3 proceeds regardless of
  // the previous quorum.
  const QuorumCalculus calc(kCore5, 2);
  const auto big = ProcessSet::of({0, 1, 2, 3});
  const auto disjoint_prev = ProcessSet::of({4});
  EXPECT_TRUE(calc.unconditional(big));
  EXPECT_TRUE(calc.sub_quorum(disjoint_prev, big));
  // One fewer member: no longer unconditional, and not a majority of {4}.
  const auto small = ProcessSet::of({0, 1, 2});
  EXPECT_FALSE(calc.unconditional(small));
  EXPECT_FALSE(calc.sub_quorum(disjoint_prev, small));
}

TEST(SubQuorum, MeetsMinQuorumCountsOnlyAdmitted) {
  const QuorumCalculus calc(ProcessSet::of({0, 1, 2}), 2);
  EXPECT_TRUE(calc.meets_min_quorum(ProcessSet::of({0, 1, 7, 8})));
  EXPECT_FALSE(calc.meets_min_quorum(ProcessSet::of({0, 7, 8, 9})));
}

TEST(SubQuorum, DynamicCalculusSeparatesAdmittedFromAll) {
  // W = {0,1,2}, A = {3,4}: Min_Quorum counts W only; the unconditional
  // clause counts W ∪ A.
  const QuorumCalculus calc(ProcessSet::of({0, 1, 2}), ProcessSet::range(5), 2);
  EXPECT_FALSE(calc.meets_min_quorum(ProcessSet::of({3, 4})));
  EXPECT_TRUE(calc.meets_min_quorum(ProcessSet::of({0, 1, 3, 4})));
  EXPECT_TRUE(calc.unconditional(ProcessSet::of({0, 1, 3, 4})));
  EXPECT_FALSE(calc.unconditional(ProcessSet::of({0, 1, 3})));
}

TEST(SubQuorum, RejectsAdmittedNotSubsetOfAll) {
  EXPECT_THROW(QuorumCalculus(ProcessSet::of({0, 9}), ProcessSet::of({0, 1}), 1),
               InvariantViolation);
}

TEST(SubQuorum, RejectsZeroMinQuorum) {
  EXPECT_THROW(QuorumCalculus(kCore5, 0), InvariantViolation);
}

// Property sweep: paper 4.1 property 1 — Sub_Quorum(S,T) implies S∩T ≠ ∅
// — over every (S, T) pair of subsets of a 6-process universe, for all
// Min_Quorum values, with S restricted to legal quorums (|S∩W0| >= MinQ).
class SubQuorumProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SubQuorumProperty, SubQuorumImpliesIntersection) {
  const std::size_t min_quorum = GetParam();
  const auto core = ProcessSet::range(6);
  const QuorumCalculus calc(core, min_quorum);
  for (std::uint32_t s_bits = 1; s_bits < 64; ++s_bits) {
    ProcessSet S;
    for (std::uint32_t b = 0; b < 6; ++b) {
      if (s_bits & (1u << b)) S.insert(ProcessId(b));
    }
    if (S.intersection_size(core) < min_quorum) continue;  // not a legal quorum
    for (std::uint32_t t_bits = 1; t_bits < 64; ++t_bits) {
      ProcessSet T;
      for (std::uint32_t b = 0; b < 6; ++b) {
        if (t_bits & (1u << b)) T.insert(ProcessId(b));
      }
      if (calc.sub_quorum(S, T)) {
        EXPECT_TRUE(S.intersects(T))
            << "S=" << S.to_string() << " T=" << T.to_string()
            << " MinQ=" << min_quorum;
      }
    }
  }
}

// Property 2: two sub-quorums of the same S intersect each other.
TEST_P(SubQuorumProperty, TwoSubQuorumsOfSameQuorumIntersect) {
  const std::size_t min_quorum = GetParam();
  const auto core = ProcessSet::range(6);
  const QuorumCalculus calc(core, min_quorum);
  for (std::uint32_t s_bits = 1; s_bits < 64; ++s_bits) {
    ProcessSet S;
    for (std::uint32_t b = 0; b < 6; ++b) {
      if (s_bits & (1u << b)) S.insert(ProcessId(b));
    }
    if (S.intersection_size(core) < min_quorum) continue;
    std::vector<ProcessSet> successors;
    for (std::uint32_t t_bits = 1; t_bits < 64; ++t_bits) {
      ProcessSet T;
      for (std::uint32_t b = 0; b < 6; ++b) {
        if (t_bits & (1u << b)) T.insert(ProcessId(b));
      }
      if (calc.sub_quorum(S, T)) successors.push_back(T);
    }
    for (const auto& T1 : successors) {
      for (const auto& T2 : successors) {
        EXPECT_TRUE(T1.intersects(T2))
            << "S=" << S.to_string() << " T1=" << T1.to_string()
            << " T2=" << T2.to_string() << " MinQ=" << min_quorum;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MinQuorumSweep, SubQuorumProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ---- ParticipantTracker (section 6) --------------------------------------

TEST(Participants, InitialStateCoreVsJoiner) {
  const auto core = ProcessSet::of({0, 1, 2});
  const auto core_member = ParticipantTracker::initial(core, ProcessId(1));
  EXPECT_EQ(core_member.admitted(), core);
  EXPECT_TRUE(core_member.pending().empty());
  const auto joiner = ParticipantTracker::initial(core, ProcessId(7));
  EXPECT_EQ(joiner.admitted(), core);
  EXPECT_EQ(joiner.pending(), ProcessSet::of({7}));
}

TEST(Participants, MergeUnionsAndSubtractsAdmitted) {
  const auto core = ProcessSet::of({0, 1});
  auto a = ParticipantTracker::initial(core, ProcessId(0));
  const auto b = ParticipantTracker::initial(core, ProcessId(5));
  const auto c = ParticipantTracker::initial(core, ProcessId(6));
  a.merge_attempt_step({&b, &c});
  EXPECT_EQ(a.admitted(), core);
  EXPECT_EQ(a.pending(), ProcessSet::of({5, 6}));
}

TEST(Participants, AdmitOnFormMovesSessionMembers) {
  const auto core = ProcessSet::of({0, 1});
  auto t = ParticipantTracker::initial(core, ProcessId(0));
  const auto b = ParticipantTracker::initial(core, ProcessId(5));
  const auto c = ParticipantTracker::initial(core, ProcessId(6));
  t.merge_attempt_step({&b, &c});
  t.admit_on_form(ProcessSet::of({0, 1, 5}));  // 6 was not in the session
  EXPECT_EQ(t.admitted(), ProcessSet::of({0, 1, 5}));
  EXPECT_EQ(t.pending(), ProcessSet::of({6}));
}

TEST(Participants, MonotonicityLemma12) {
  // W and W∪A never shrink across merges and admissions.
  const auto core = ProcessSet::of({0, 1});
  auto t = ParticipantTracker::initial(core, ProcessId(0));
  Rng rng(77);
  ProcessSet prev_w = t.admitted();
  ProcessSet prev_all = t.all_participants();
  for (int round = 0; round < 50; ++round) {
    const auto peer = ParticipantTracker::initial(
        core, ProcessId(static_cast<std::uint32_t>(2 + rng.next_below(10))));
    t.merge_attempt_step({&peer});
    if (rng.next_bool(0.5)) {
      ProcessSet session = core;
      for (ProcessId p : t.pending()) {
        if (rng.next_bool(0.5)) session.insert(p);
      }
      t.admit_on_form(session);
    }
    EXPECT_TRUE(prev_w.is_subset_of(t.admitted()));
    EXPECT_TRUE(prev_all.is_subset_of(t.all_participants()));
    prev_w = t.admitted();
    prev_all = t.all_participants();
  }
}

TEST(Participants, CodecRoundTrip) {
  const auto core = ProcessSet::of({0, 1, 2});
  auto t = ParticipantTracker::initial(core, ProcessId(9));
  Encoder enc;
  t.encode(enc);
  Decoder dec(enc.bytes());
  EXPECT_EQ(ParticipantTracker::decode(dec), t);
}

}  // namespace
}  // namespace dynvote
