// Unit tests: sessions, ambiguous-session records, protocol state
// transitions and persistence round-trips.
#include <gtest/gtest.h>

#include "dv/messages.hpp"
#include "dv/session.hpp"
#include "dv/state.hpp"
#include "util/ensure.hpp"

namespace dynvote {
namespace {

const ProcessSet kCore = ProcessSet::range(5);

TEST(Session, IdentityIsMembershipPlusNumber) {
  const Session a{ProcessSet::of({0, 1}), 3};
  const Session b{ProcessSet::of({0, 1}), 3};
  const Session c{ProcessSet::of({0, 1}), 4};
  const Session d{ProcessSet::of({0, 2}), 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(Session, ToStringShowsBoth) {
  EXPECT_EQ((Session{ProcessSet::of({0, 1}), 7}).to_string(), "({p0,p1},7)");
}

TEST(Session, CodecRoundTrip) {
  const Session s{ProcessSet::of({2, 4, 6}), 42};
  Encoder enc;
  s.encode(enc);
  Decoder dec(enc.bytes());
  EXPECT_EQ(Session::decode(dec), s);
}

TEST(AmbiguousSession, FreshAttemptKnowsOnlySelf) {
  const AmbiguousSession a(Session{ProcessSet::of({0, 1, 2}), 5}, ProcessId(1));
  EXPECT_EQ(a.knowledge_about(ProcessId(1)), FormedKnowledge::kNotFormed);
  EXPECT_EQ(a.knowledge_about(ProcessId(0)), FormedKnowledge::kUnknown);
  EXPECT_EQ(a.knowledge_about(ProcessId(2)), FormedKnowledge::kUnknown);
  EXPECT_FALSE(a.known_unformed_by_all());
  EXPECT_FALSE(a.known_formed_by_someone());
}

TEST(AmbiguousSession, KnowledgeUpdatesDriveResolutionPredicates) {
  AmbiguousSession a(Session{ProcessSet::of({0, 1}), 5}, ProcessId(0));
  a.set_knowledge(ProcessId(1), FormedKnowledge::kNotFormed);
  EXPECT_TRUE(a.known_unformed_by_all());
  a.set_knowledge(ProcessId(1), FormedKnowledge::kFormed);
  EXPECT_TRUE(a.known_formed_by_someone());
  EXPECT_FALSE(a.known_unformed_by_all());
}

TEST(AmbiguousSession, CodecRoundTripPreservesKnowledge) {
  AmbiguousSession a(Session{ProcessSet::of({0, 1, 2}), 9}, ProcessId(2));
  a.set_knowledge(ProcessId(0), FormedKnowledge::kFormed);
  Encoder enc;
  a.encode(enc);
  Decoder dec(enc.bytes());
  const AmbiguousSession back = AmbiguousSession::decode(dec);
  EXPECT_EQ(back, a);
  EXPECT_EQ(back.knowledge_about(ProcessId(0)), FormedKnowledge::kFormed);
}

TEST(ProtocolState, InitialCoreMemberKnowsF0) {
  const auto state = ProtocolState::initial(kCore, ProcessId(2));
  EXPECT_EQ(state.session_number, 0);
  ASSERT_TRUE(state.last_primary.has_value());
  EXPECT_EQ(state.last_primary->members, kCore);
  EXPECT_EQ(state.last_primary->number, 0);
  EXPECT_EQ(state.last_primary_number(), 0);
  EXPECT_TRUE(state.ambiguous.empty());
  EXPECT_EQ(state.last_formed.size(), 5u);
  EXPECT_TRUE(state.has_history);
}

TEST(ProtocolState, InitialJoinerKnowsInfinity) {
  const auto state = ProtocolState::initial(kCore, ProcessId(9));
  EXPECT_FALSE(state.last_primary.has_value());
  EXPECT_EQ(state.last_primary_number(), kNoSessionNumber);
  EXPECT_TRUE(state.last_formed.empty());
  EXPECT_EQ(state.participants.pending(), ProcessSet::of({9}));
}

TEST(ProtocolState, DiskLossStateHasNoHistory) {
  const auto state = ProtocolState::after_disk_loss(ProcessId(3));
  EXPECT_FALSE(state.last_primary.has_value());
  EXPECT_FALSE(state.has_history);
}

TEST(ProtocolState, RecordAttemptKeepsAscendingOrder) {
  auto state = ProtocolState::initial(kCore, ProcessId(0));
  state.record_attempt(Session{ProcessSet::of({0, 1, 2}), 1}, ProcessId(0));
  state.record_attempt(Session{ProcessSet::of({0, 1}), 2}, ProcessId(0));
  ASSERT_EQ(state.ambiguous.size(), 2u);
  EXPECT_EQ(state.ambiguous[0].session.number, 1);
  EXPECT_EQ(state.ambiguous[1].session.number, 2);
}

TEST(ProtocolState, RecordAttemptOverwritesSameMembership) {
  // "If Ambiguous_Sessions already contains an attempt with the same
  // membership, overwrite it" (paper figure 1 step 2).
  auto state = ProtocolState::initial(kCore, ProcessId(0));
  state.record_attempt(Session{ProcessSet::of({0, 1}), 1}, ProcessId(0));
  state.record_attempt(Session{ProcessSet::of({0, 2}), 2}, ProcessId(0));
  state.record_attempt(Session{ProcessSet::of({0, 1}), 3}, ProcessId(0));
  ASSERT_EQ(state.ambiguous.size(), 2u);
  EXPECT_EQ(state.ambiguous[0].session, (Session{ProcessSet::of({0, 2}), 2}));
  EXPECT_EQ(state.ambiguous[1].session, (Session{ProcessSet::of({0, 1}), 3}));
}

TEST(ProtocolState, RecordAttemptRequiresMembership) {
  auto state = ProtocolState::initial(kCore, ProcessId(0));
  EXPECT_THROW(
      state.record_attempt(Session{ProcessSet::of({1, 2}), 1}, ProcessId(0)),
      InvariantViolation);
}

TEST(ProtocolState, ApplyFormClearsAmbiguityAndUpdatesLastFormed) {
  auto state = ProtocolState::initial(kCore, ProcessId(0));
  state.record_attempt(Session{ProcessSet::of({0, 1, 2}), 1}, ProcessId(0));
  const Session formed{ProcessSet::of({0, 1, 2}), 1};
  state.apply_form(formed);
  EXPECT_EQ(state.last_primary, formed);
  EXPECT_TRUE(state.ambiguous.empty());
  EXPECT_EQ(state.last_formed.at(ProcessId(1)), formed);
  EXPECT_EQ(state.last_formed.at(ProcessId(2)), formed);
  // Members not in the formed session keep their old entry.
  EXPECT_EQ(state.last_formed.at(ProcessId(4)).number, 0);
}

TEST(ProtocolState, AdoptFormedSupersedesOlderAmbiguity) {
  auto state = ProtocolState::initial(kCore, ProcessId(0));
  state.record_attempt(Session{ProcessSet::of({0, 1, 2}), 1}, ProcessId(0));
  state.record_attempt(Session{ProcessSet::of({0, 3}), 2}, ProcessId(0));
  state.record_attempt(Session{ProcessSet::of({0, 4}), 3}, ProcessId(0));
  const Session adopted{ProcessSet::of({0, 3}), 2};
  state.adopt_formed(adopted);
  EXPECT_EQ(state.last_primary, adopted);
  ASSERT_EQ(state.ambiguous.size(), 1u);  // only the number-3 attempt remains
  EXPECT_EQ(state.ambiguous[0].session.number, 3);
  EXPECT_EQ(state.last_formed.at(ProcessId(3)), adopted);
}

TEST(ProtocolState, AdoptOlderThanLastPrimaryRejected) {
  auto state = ProtocolState::initial(kCore, ProcessId(0));
  EXPECT_THROW(state.adopt_formed(Session{kCore, 0}), InvariantViolation);
}

TEST(ProtocolState, CodecRoundTripFullState) {
  auto state = ProtocolState::initial(kCore, ProcessId(0));
  state.session_number = 17;
  state.record_attempt(Session{ProcessSet::of({0, 1, 2}), 18}, ProcessId(0));
  state.ambiguous[0].set_knowledge(ProcessId(1), FormedKnowledge::kFormed);
  Encoder enc;
  state.encode(enc);
  Decoder dec(enc.bytes());
  EXPECT_EQ(ProtocolState::decode(dec), state);
}

TEST(ProtocolState, CodecRoundTripInfinityState) {
  auto state = ProtocolState::after_disk_loss(ProcessId(6));
  Encoder enc;
  state.encode(enc);
  Decoder dec(enc.bytes());
  EXPECT_EQ(ProtocolState::decode(dec), state);
}

TEST(ProtocolState, DecodeRejectsUnknownFormatVersion) {
  const auto state = ProtocolState::initial(kCore, ProcessId(0));
  Encoder enc;
  state.encode(enc);
  std::vector<std::uint8_t> bytes = enc.bytes();
  bytes[0] = 0xEE;  // the version byte leads the record
  Decoder dec(bytes);
  EXPECT_THROW((void)ProtocolState::decode(dec), CodecError);
}

TEST(InfoPayload, EncodedSizeGrowsWithAmbiguity) {
  InfoPayload small;
  small.last_primary = Session{kCore, 0};
  InfoPayload big = small;
  for (int i = 1; i <= 8; ++i) {
    big.ambiguous.push_back(Session{kCore, i});
  }
  EXPECT_GT(big.encoded_size(), small.encoded_size());
  EXPECT_EQ(big.phase(), 0);
  EXPECT_EQ(small.type_name(), "dv.info");
}

TEST(AttemptPayload, PhaseAndSize) {
  AttemptPayload attempt;
  attempt.session_number = 5;
  EXPECT_EQ(attempt.phase(), 1);
  EXPECT_EQ(attempt.encoded_size(), 8u);
}

TEST(RoundPayload, CarriesItsPhase) {
  const RoundPayload r(3, "3pc.decide");
  EXPECT_EQ(r.phase(), 3);
  EXPECT_EQ(r.type_name(), "3pc.decide");
  EXPECT_GT(r.encoded_size(), 0u);
}

}  // namespace
}  // namespace dynvote
