// Unit tests: the fleet-scale telemetry layer — MetricsHub rollups,
// the sim-time TimeSeriesSampler, the per-group FlightRecorder, sharded
// trace filtering, and the ShardedFleet telemetry export (including its
// byte-identity across sweep-pool widths).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "harness/trace_replay.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/hub.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "shard/sharded_fleet.hpp"
#include "shard/sharded_kv.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

// ---- obs/hub ----------------------------------------------------------------

TEST(MetricsHub, RollupSumsCountersMaxMergesGaugesMergesHistograms) {
  obs::MetricsHub hub(3);
  hub.group(0).counter("formed").add(2);
  hub.group(1).counter("formed").add(5);
  hub.group(2).counter("rejected").add(1);
  hub.group(0).gauge("level").set(4);
  hub.group(1).gauge("level").set(9);
  hub.group(1).gauge("level").set(3);  // current 3, max 9
  hub.group(0).histogram("lat").observe(10);
  hub.group(2).histogram("lat").observe(1000);

  obs::MetricsRegistry rollup = hub.rollup();
  EXPECT_EQ(rollup.counter_value("formed"), 7u);
  EXPECT_EQ(rollup.counter_value("rejected"), 1u);
  // Gauges max-merge: both the current level and the high-water mark
  // report the fleet-wide maximum.
  EXPECT_EQ(rollup.gauge("level").value(), 4);
  EXPECT_EQ(rollup.gauge("level").max(), 9);
  EXPECT_EQ(rollup.histogram("lat").count(), 2u);
  EXPECT_EQ(rollup.histogram("lat").min(), 10u);
  EXPECT_EQ(rollup.histogram("lat").max(), 1000u);

  EXPECT_EQ(hub.group_counter_sum("formed"), 7u);
  EXPECT_EQ(hub.group_counter_sum("never-registered"), 0u);
}

TEST(MetricsHub, ToJsonIsDeterministicAndIndexOrdered) {
  const auto build = [] {
    obs::MetricsHub hub(2);
    // Register in different orders per group: the export is name-sorted,
    // so the document must not depend on registration order.
    hub.group(0).counter("b").add(1);
    hub.group(0).counter("a").add(2);
    hub.group(1).counter("a").add(3);
    hub.group(1).counter("b").add(4);
    return hub.to_json().dump();
  };
  const std::string once = build();
  EXPECT_EQ(once, build());
  const JsonValue doc = JsonValue::parse(once);
  EXPECT_EQ(doc.at("num_groups").as_uint(), 2u);
  EXPECT_EQ(doc.at("groups").as_array().size(), 2u);
  EXPECT_EQ(doc.at("rollup").at("counters").at("a").as_uint(), 5u);
}

TEST(MetricsHub, MergedQuantileMatchesExactHistogramOfAllSamples) {
  // Property: the rollup histogram is exactly the histogram of every
  // group's samples concatenated, so its quantiles equal those of a
  // single histogram fed the union — for random shardings of a random
  // stream.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t groups = 1 + rng.next_below(8);
    obs::MetricsHub hub(groups);
    obs::Histogram exact;
    const std::size_t samples = 1 + rng.next_below(200);
    for (std::size_t s = 0; s < samples; ++s) {
      const std::uint64_t value = rng.next_below(1u << 20);
      hub.group(rng.next_below(groups)).histogram("lat").observe(value);
      exact.observe(value);
    }
    obs::MetricsRegistry rollup = hub.rollup();
    const obs::Histogram& merged = rollup.histogram("lat");
    ASSERT_EQ(merged, exact);
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
      EXPECT_EQ(merged.quantile(q), exact.quantile(q));
    }
  }
}

// ---- obs/timeseries ---------------------------------------------------------

TEST(TimeSeries, TickGatesSamplesAndComputesWindowedRates) {
  obs::MetricsHub hub(2);
  obs::Counter& c0 = hub.group(0).counter("formed");
  obs::Counter& c1 = hub.group(1).counter("formed");
  obs::TimeSeriesOptions options;
  options.tick = 1000;
  obs::TimeSeriesSampler sampler(hub, options);
  sampler.track_counter("formed");
  sampler.track_gauge("level");

  c0.add(2);
  sampler.sample(0);  // first sample always retained
  EXPECT_EQ(sampler.size(), 1u);
  sampler.sample(500);  // inside the tick window: dropped
  EXPECT_EQ(sampler.size(), 1u);
  sampler.sample(400);  // out of order: dropped
  EXPECT_EQ(sampler.size(), 1u);

  c0.add(1);
  c1.add(3);
  hub.group(1).gauge("level").set(6);
  sampler.sample(2'000'000);  // 2 virtual seconds later
  ASSERT_EQ(sampler.size(), 2u);

  const JsonValue doc = sampler.to_json();
  EXPECT_EQ(doc.at("schema_version").as_int(), obs::kTimeSeriesSchemaVersion);
  const JsonValue& formed = doc.at("counters").at("formed");
  EXPECT_EQ(formed.at("values").as_array()[0].as_uint(), 2u);
  EXPECT_EQ(formed.at("values").as_array()[1].as_uint(), 6u);
  // Delta 4 over 2 virtual seconds.
  EXPECT_DOUBLE_EQ(formed.at("rates").as_array()[1].as_double(), 2.0);
  EXPECT_EQ(
      doc.at("gauges").at("level").at("values").as_array()[1].as_int(), 6);
}

TEST(TimeSeries, RingBoundEvictsOldestAndCountsDrops) {
  obs::MetricsHub hub(1);
  obs::TimeSeriesOptions options;
  options.tick = 1;
  options.capacity = 3;
  obs::TimeSeriesSampler sampler(hub, options);
  sampler.track_counter("c");
  for (SimTime t = 0; t < 10; ++t) sampler.sample(t * 10);
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_EQ(sampler.dropped(), 7u);
  const JsonValue doc = sampler.to_json();
  ASSERT_EQ(doc.at("times").as_array().size(), 3u);
  EXPECT_EQ(doc.at("times").as_array()[0].as_uint(), 70u);  // oldest kept
  EXPECT_EQ(doc.at("dropped").as_uint(), 7u);
}

// ---- obs/flight_recorder ----------------------------------------------------

obs::TraceEvent protocol_event(std::uint64_t eid, std::uint32_t pid,
                               obs::TraceEventKind kind, SimTime t,
                               std::uint64_t cause = 0) {
  obs::TraceEvent e;
  e.eid = eid;
  e.time = t;
  e.kind = kind;
  e.a = ProcessId(pid);
  e.cause = cause;
  return e;
}

TEST(FlightRecorder, RoutesByGroupAndSkipsMessages) {
  obs::FlightRecorderOptions options;
  options.num_groups = 2;
  options.group_size = 3;
  obs::FlightRecorder recorder(options);

  recorder.note(protocol_event(1, 1, obs::TraceEventKind::kViewInstalled, 10));
  recorder.note(protocol_event(2, 4, obs::TraceEventKind::kViewInstalled, 11));
  recorder.note(protocol_event(3, 0, obs::TraceEventKind::kMessageSend, 12));

  obs::TraceEvent topology;
  topology.eid = 4;
  topology.kind = obs::TraceEventKind::kTopologyChange;
  topology.members.insert(ProcessId(3));
  topology.members.insert(ProcessId(5));
  recorder.note(topology);

  ASSERT_EQ(recorder.group_events(0).size(), 1u);  // message skipped
  EXPECT_EQ(recorder.group_events(0)[0].eid, 1u);
  ASSERT_EQ(recorder.group_events(1).size(), 2u);  // view + topology
  EXPECT_EQ(recorder.group_events(1)[1].eid, 4u);
}

TEST(FlightRecorder, RingKeepsLastNOldestFirst) {
  obs::FlightRecorderOptions options;
  options.num_groups = 1;
  options.group_size = 1;
  options.per_group_capacity = 4;
  obs::FlightRecorder recorder(options);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    recorder.note(
        protocol_event(i, 0, obs::TraceEventKind::kViewInstalled, i));
  }
  const auto events = recorder.group_events(0);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().eid, 7u);
  EXPECT_EQ(events.back().eid, 10u);
  EXPECT_EQ(recorder.dropped(0), 6u);
}

TEST(FlightRecorder, PostmortemChainsAreRootFirstAndFlagTruncation) {
  obs::FlightRecorderOptions options;
  options.num_groups = 1;
  options.group_size = 1;
  options.per_group_capacity = 8;
  obs::FlightRecorder recorder(options);
  recorder.note(protocol_event(1, 0, obs::TraceEventKind::kViewInstalled, 1));
  recorder.note(
      protocol_event(2, 0, obs::TraceEventKind::kSessionAttempt, 2, 1));
  recorder.note(
      protocol_event(3, 0, obs::TraceEventKind::kSessionFormed, 3, 2));

  JsonValue doc = recorder.postmortem_json(0, "test-reason", 99);
  EXPECT_EQ(doc.at("schema_version").as_int(),
            obs::kPostmortemSchemaVersion);
  EXPECT_EQ(doc.at("reason").as_string(), "test-reason");
  EXPECT_EQ(doc.at("time").as_uint(), 99u);
  ASSERT_EQ(doc.at("chains").as_array().size(), 1u);  // recent == formed
  const JsonValue& chain = doc.at("chains").as_array()[0];
  EXPECT_EQ(chain.at("for").as_uint(), 3u);
  ASSERT_EQ(chain.at("eids").as_array().size(), 3u);
  EXPECT_EQ(chain.at("eids").as_array()[0].as_uint(), 1u);  // root first
  EXPECT_FALSE(chain.at("truncated").as_bool());
  // Events serialize in the same single-letter schema as trace.json.
  const obs::TraceEvent parsed =
      obs::trace_event_from_json(doc.at("events").as_array()[0]);
  EXPECT_EQ(parsed.eid, 1u);

  // A cause outside the ring truncates the chain.
  recorder.note(
      protocol_event(5, 0, obs::TraceEventKind::kSessionAbort, 5, 4));
  doc = recorder.postmortem_json(0, "x", 100);
  bool found_abort_chain = false;
  for (const JsonValue& c : doc.at("chains").as_array()) {
    if (c.at("for").as_uint() != 5u) continue;
    found_abort_chain = true;
    EXPECT_TRUE(c.at("truncated").as_bool());
  }
  EXPECT_TRUE(found_abort_chain);
}

// ---- sharded trace meta + group filtering -----------------------------------

TEST(TraceFilter, FleetShapeRoundTripsAndSingleGroupTracesAreUnchanged) {
  obs::TraceSink sink;
  sink.record(protocol_event(0, 0, obs::TraceEventKind::kViewInstalled, 1));

  obs::TraceMeta meta;
  meta.protocol = "optimized";
  meta.n = 6;
  meta.num_groups = 2;
  meta.group_size = 3;
  const std::string sharded = trace_json_string(meta, sink);
  // Both serializers must agree byte-for-byte on the shape keys.
  EXPECT_EQ(sharded, trace_to_json(meta, sink).dump());
  const TraceMetaAndEvents parsed = load_trace_json(sharded);
  EXPECT_EQ(parsed.meta.num_groups, 2u);
  EXPECT_EQ(parsed.meta.group_size, 3u);

  // A shapeless meta omits the keys entirely (single-group traces stay
  // byte-unchanged from before the schema grew the fields).
  obs::TraceMeta flat = meta;
  flat.num_groups = 0;
  flat.group_size = 0;
  const std::string single = trace_json_string(flat, sink);
  EXPECT_EQ(single.find("num_groups"), std::string::npos);
  EXPECT_EQ(load_trace_json(single).meta.group_size, 0u);
}

TEST(TraceFilter, GroupFilterKeepsOneGroupsEventsWithCausesIntact) {
  shard::ShardedFleetOptions options;
  options.num_groups = 3;
  options.group_size = 3;
  options.num_machines = 4;
  options.sim.seed = 5150;
  shard::ShardedFleet fleet(options);
  fleet.start();
  fleet.partition_fleet({{0, 1}, {2, 3}});
  fleet.settle();
  fleet.merge_fleet();
  fleet.settle();

  obs::TraceMeta meta;
  meta.protocol = "optimized";
  meta.n = fleet.fleet_n();
  meta.num_groups = options.num_groups;
  meta.group_size = options.group_size;
  ProcessSet all;
  for (std::uint32_t g = 0; g < options.num_groups; ++g) {
    for (const ProcessId p : fleet.group_members(g)) all.insert(p);
  }
  meta.core = all;
  const TraceMetaAndEvents trace =
      load_trace_json(trace_json_string(meta, fleet.sim().trace()));

  std::size_t kept_total = 0;
  for (std::uint32_t g = 0; g < options.num_groups; ++g) {
    const TraceMetaAndEvents filtered = filter_trace_group(trace, g);
    EXPECT_EQ(filtered.meta.n, options.group_size);
    EXPECT_FALSE(filtered.events.empty());
    kept_total += filtered.events.size();
    const auto lo = ProcessId(g * options.group_size).value();
    const auto hi = lo + options.group_size;
    for (const obs::TraceEvent& e : filtered.events) {
      if (e.kind == obs::TraceEventKind::kTopologyChange) {
        for (const ProcessId p : e.members) {
          EXPECT_GE(p.value(), lo);
          EXPECT_LT(p.value(), hi);
        }
      } else {
        EXPECT_GE(e.a.value(), lo);
        EXPECT_LT(e.a.value(), hi);
      }
      // Causal chains survive: any cited cause is itself kept.
      if (e.cause != 0) {
        bool found = false;
        for (const obs::TraceEvent& other : filtered.events) {
          if (other.eid == e.cause) { found = true; break; }
        }
        EXPECT_TRUE(found) << "event #" << e.eid << " cites evicted #"
                           << e.cause;
      }
    }
  }
  // Every per-process/topology event belongs to exactly one group.
  EXPECT_EQ(kept_total, trace.events.size());
}

// ---- ShardedFleet telemetry -------------------------------------------------

shard::ShardedFleetOptions small_fleet_options(std::uint64_t seed) {
  shard::ShardedFleetOptions options;
  options.num_groups = 4;
  options.group_size = 3;
  options.num_machines = 4;
  options.sim.seed = seed;
  return options;
}

std::string run_fleet_telemetry(std::uint64_t seed) {
  shard::ShardedFleet fleet(small_fleet_options(seed));
  shard::ShardedKv kv(fleet);
  fleet.start();
  fleet.partition_fleet({{0, 1}, {2, 3}});
  fleet.settle();
  for (int i = 0; i < 8; ++i) kv.write("k" + std::to_string(i), "v");
  fleet.merge_fleet();
  fleet.settle();
  return fleet.telemetry_json().dump();
}

TEST(FleetTelemetry, RollupAgreesWithFleetTotalsAndIsByteStable) {
  shard::ShardedFleet fleet(small_fleet_options(21));
  fleet.start();
  fleet.partition_fleet({{0, 1}, {2, 3}});
  fleet.settle();
  fleet.merge_fleet();
  fleet.settle();

  const JsonValue doc = fleet.telemetry_json();
  EXPECT_EQ(doc.at("schema_version").as_int(),
            shard::kFleetTelemetrySchemaVersion);
  EXPECT_EQ(doc.at("groups").as_array().size(), 4u);
  // Per-group counters sum to the rollup exactly (dv.formed counts
  // per-replica formation events; the distinct-session total is its
  // own query).
  std::uint64_t sum = 0;
  for (const JsonValue& g : doc.at("groups").as_array()) {
    sum += g.at("counters").at("dv.formed").as_uint();
  }
  EXPECT_EQ(doc.at("rollup").at("counters").at("dv.formed").as_uint(), sum);
  EXPECT_GE(sum, fleet.total_formed_sessions());
  // Every closed reconfiguration window is counted once, fleet-wide.
  EXPECT_EQ(doc.at("rollup").at("counters").at("shard.reconfigs").as_uint(),
            fleet.reconfig_samples().size());
  // Reconfiguration windows carry group attribution and appear in the
  // top-k listing, slowest first.
  EXPECT_FALSE(fleet.reconfig_samples().empty());
  const JsonValue& slowest = doc.at("slowest_reconfigs").as_array();
  for (std::size_t i = 1; i < slowest.as_array().size(); ++i) {
    EXPECT_GE(slowest.as_array()[i - 1].at("latency_ticks").as_uint(),
              slowest.as_array()[i].at("latency_ticks").as_uint());
  }
  // Byte-stable: an identical run exports the identical document.
  EXPECT_EQ(run_fleet_telemetry(33), run_fleet_telemetry(33));
}

TEST(FleetTelemetry, OutlierLatencyDumpsACappedPostmortem) {
  shard::ShardedFleetOptions options = small_fleet_options(55);
  // Every reconfiguration exceeds one tick, so every closed window is an
  // outlier; the cap keeps the retained post-mortems bounded.
  options.telemetry.reconfig_outlier_ticks = 1;
  options.telemetry.max_postmortems = 2;
  shard::ShardedFleet fleet(options);
  fleet.start();
  fleet.partition_fleet({{0, 1}, {2, 3}});
  fleet.settle();
  fleet.merge_fleet();
  fleet.settle();

  ASSERT_EQ(fleet.postmortems().size(), 2u);
  const JsonValue& first = fleet.postmortems().front();
  EXPECT_NE(first.at("reason").as_string().find("reconfig-latency-outlier"),
            std::string::npos);
  EXPECT_FALSE(first.at("events").as_array().empty());
  // The telemetry document embeds them.
  EXPECT_EQ(fleet.telemetry_json().at("postmortems").as_array().size(), 2u);
}

TEST(FleetTelemetry, DisabledTelemetryKeepsTheSimulationScheduleIdentical) {
  const auto digest = [](bool telemetry) {
    shard::ShardedFleetOptions options = small_fleet_options(77);
    options.telemetry.enabled = telemetry;
    shard::ShardedFleet fleet(options);
    fleet.start();
    fleet.partition_fleet({{0, 1}, {2, 3}});
    fleet.settle();
    fleet.merge_fleet();
    fleet.settle();
    return std::pair{fleet.sim().queue().executed(),
                     fleet.total_formed_sessions()};
  };
  EXPECT_EQ(digest(true), digest(false));
}

// Named Sweep* so run_experiments.sh's TSan pass picks it up: pooled
// fleets producing telemetry concurrently. The tentpole contract — the
// fleet-telemetry export is byte-identical at any DYNVOTE_THREADS — is
// asserted here at widths 1 and 4 explicitly.
TEST(SweepTelemetry, TelemetryExportByteIdenticalAcrossPoolWidths) {
  constexpr std::size_t kSeeds = 6;
  const auto cell = [](std::size_t i) { return run_fleet_telemetry(i); };
  const auto serial = sweep_map<std::string>(kSeeds, 1, cell);
  const auto pooled = sweep_map<std::string>(kSeeds, 4, cell);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < kSeeds; ++i) {
    EXPECT_EQ(serial[i], pooled[i]) << "seed " << i;
    EXPECT_FALSE(serial[i].empty());
  }
}

}  // namespace
}  // namespace dynvote
