// Integration tests: the centralized variant (paper section 4.4) — same
// quorum decisions as the symmetric protocol with fewer point-to-point
// messages, coordinator failure handling, and the attempt-before-ack
// durability that preserves the safety argument.
#include <gtest/gtest.h>

#include "dv/centralized_protocol.hpp"
#include "harness/cluster.hpp"
#include "harness/metrics.hpp"
#include "harness/scenario.hpp"

namespace dynvote {
namespace {

ClusterOptions centralized_options(std::uint64_t seed = 61) {
  ClusterOptions options;
  options.kind = ProtocolKind::kCentralized;
  options.n = 5;
  options.sim.seed = seed;
  return options;
}

const CentralizedDvProtocol& cent(Cluster& cluster, std::uint32_t p) {
  return dynamic_cast<const CentralizedDvProtocol&>(
      cluster.protocol(ProcessId(p)));
}

TEST(CentralizedProtocol, CoordinatorIsLowestRankedMember) {
  EXPECT_EQ(CentralizedDvProtocol::coordinator_of(
                View{ViewId(1), ProcessSet::of({3, 1, 4})}),
            ProcessId(1));
}

TEST(CentralizedProtocol, FormsInitialPrimary) {
  Cluster cluster(centralized_options());
  cluster.start();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::range(5));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(CentralizedProtocol, SameQuorumDecisionsAsSymmetric) {
  // Replay the same partition chain on both variants; the formed
  // memberships must agree step for step.
  Cluster centralized(centralized_options());
  ClusterOptions sym_options = centralized_options();
  sym_options.kind = ProtocolKind::kBasic;
  Cluster symmetric(sym_options);

  const std::vector<std::vector<ProcessSet>> steps = {
      {ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})},
      {ProcessSet::of({0, 1}), ProcessSet::of({2}), ProcessSet::of({3, 4})},
      {ProcessSet::range(5)},
  };
  for (Cluster* cluster : {&centralized, &symmetric}) {
    cluster->start();
    for (const auto& groups : steps) {
      cluster->partition(groups);
      cluster->settle();
    }
  }
  ASSERT_TRUE(centralized.live_primary().has_value());
  ASSERT_TRUE(symmetric.live_primary().has_value());
  EXPECT_EQ(centralized.live_primary()->members,
            symmetric.live_primary()->members);
  EXPECT_TRUE(centralized.checker().check_all().empty());
}

TEST(CentralizedProtocol, FewerMessagesThanSymmetric) {
  Cluster centralized(centralized_options());
  ClusterOptions sym_options = centralized_options();
  sym_options.kind = ProtocolKind::kBasic;
  Cluster symmetric(sym_options);
  for (Cluster* cluster : {&centralized, &symmetric}) {
    cluster->start();
    for (int i = 0; i < 10; ++i) {
      cluster->partition({ProcessSet::of({1, 2, 3, 4}), ProcessSet::of({0})});
      cluster->settle();
      cluster->merge();
      cluster->settle();
    }
  }
  const auto c = RunMetrics::collect(centralized);
  const auto s = RunMetrics::collect(symmetric);
  EXPECT_EQ(c.formed_sessions, s.formed_sessions);
  // 4(n-1) point-to-point messages versus 2n^2: at n = 5 that is 16 vs
  // 50 per full-view quorum — expect a >2x reduction overall.
  EXPECT_LT(2 * c.messages_sent, s.messages_sent);
}

TEST(CentralizedProtocol, ReportsFourRounds) {
  Cluster cluster(centralized_options());
  cluster.start();
  EXPECT_DOUBLE_EQ(cluster.checker().rounds_per_form().mean(), 4.0);
}

TEST(CentralizedProtocol, MemberAttemptIsDurableBeforeAck) {
  // Drop the COMMIT to p2: everyone else forms, p2 keeps the ambiguous
  // record — the same guarantee as the symmetric protocol's lost
  // attempt round.
  Cluster cluster(centralized_options());
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dvc.commit", 1);
  cluster.start();
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
  EXPECT_FALSE(cluster.protocol(ProcessId(2)).is_primary());
  ASSERT_EQ(cent(cluster, 2).state().ambiguous.size(), 1u);
  EXPECT_EQ(cent(cluster, 2).state().ambiguous[0].session.members,
            ProcessSet::range(5));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(CentralizedProtocol, TypicalScenarioStaysSafe) {
  // The section-1 scenario, centralized edition: c misses the commit of
  // the {a,b,c} session, then joins d,e — and is correctly refused.
  Cluster cluster(centralized_options());
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dvc.commit", 1);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1}));
  EXPECT_FALSE(cluster.protocol(ProcessId(2)).is_primary());
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(CentralizedProtocol, CoordinatorCrashMidSessionRecovers) {
  Cluster cluster(centralized_options());
  FaultInjector faults(cluster.sim().network());
  // Stall the session by eating the coordinator's decision fan-out...
  faults.drop_to(ProcessId(1), "dvc.attempt", 1);
  faults.drop_to(ProcessId(2), "dvc.attempt", 1);
  faults.drop_to(ProcessId(3), "dvc.attempt", 1);
  faults.drop_to(ProcessId(4), "dvc.attempt", 1);
  cluster.merge();
  cluster.settle();
  EXPECT_FALSE(cluster.live_primary().has_value());
  faults.clear();
  // ...then kill the coordinator p0. The membership change drives a new
  // session with p1 coordinating; the survivors recover.
  cluster.crash(ProcessId(0));
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({1, 2, 3, 4}));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(CentralizedProtocol, SingletonViewFormsImmediately) {
  // Regression: in a one-member view the coordinator's own (implicit)
  // acknowledgement completes the round — there is no member ack to
  // trigger the commit check.
  Cluster cluster(centralized_options());
  cluster.start();
  cluster.partition({ProcessSet::of({3, 4}), ProcessSet::of({0, 1, 2})});
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value());  // {0,1,2}
  cluster.partition({ProcessSet::of({2}), ProcessSet::of({0, 1}),
                     ProcessSet::of({3, 4})});
  cluster.settle();
  ASSERT_TRUE(cluster.protocol(ProcessId(0)).is_primary());  // {0,1}: 2/3
  cluster.partition({ProcessSet::of({1}), ProcessSet::of({0}),
                     ProcessSet::of({2}), ProcessSet::of({3, 4})});
  cluster.settle();
  // {1} is half of {0,1} holding the top rank: a singleton primary.
  EXPECT_TRUE(cluster.protocol(ProcessId(1)).is_primary());
  EXPECT_FALSE(cluster.protocol(ProcessId(0)).is_primary());
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(CentralizedProtocol, CrashRecoveryRestoresState) {
  Cluster cluster(centralized_options());
  cluster.start();
  const auto before = cent(cluster, 3).state();
  cluster.crash(ProcessId(3));
  cluster.settle();
  cluster.recover(ProcessId(3));
  cluster.settle();
  EXPECT_EQ(cent(cluster, 3).state().last_primary, before.last_primary);
  cluster.merge();
  cluster.settle();
  EXPECT_TRUE(cluster.live_primary().has_value());
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(CentralizedProtocol, MinQuorumRespected) {
  ClusterOptions options = centralized_options();
  options.config.min_quorum = 3;
  Cluster cluster(options);
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  EXPECT_FALSE(cluster.protocol(ProcessId(0)).is_primary());
  EXPECT_TRUE(cluster.protocol(ProcessId(2)).is_primary());
  EXPECT_GT(cluster.checker().rejected_sessions(), 0u);
}

TEST(CentralizedProtocol, DynamicParticipantsWork) {
  ClusterOptions options = centralized_options();
  options.n = 3;
  options.config.dynamic_participants = true;
  Cluster cluster(options);
  cluster.start();
  cluster.add_process(ProcessId(7));
  cluster.merge();
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1, 2, 7}));
  EXPECT_EQ(cent(cluster, 0).state().participants.admitted(),
            ProcessSet::of({0, 1, 2, 7}));
}

}  // namespace
}  // namespace dynvote
