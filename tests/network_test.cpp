// Unit tests: the simulated network (FIFO channels, partitions, message
// loss semantics, filters) and the Node view gate.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"
#include "util/ensure.hpp"

namespace dynvote::sim {
namespace {

class TestPayload final : public MessagePayload {
 public:
  explicit TestPayload(std::string tag, std::size_t size = 8)
      : tag_(std::move(tag)), size_(size) {}
  [[nodiscard]] std::string type_name() const override { return tag_; }
  [[nodiscard]] std::size_t encoded_size() const override { return size_; }

 private:
  std::string tag_;
  std::size_t size_;
};

/// Records everything it receives; exposes send/broadcast for tests.
class RecordingNode : public Node {
 public:
  using Node::Node;
  using Node::broadcast;
  using Node::send;

  std::vector<std::pair<ProcessId, std::string>> received;
  std::vector<View> views;

 protected:
  void on_view(const View& view) override { views.push_back(view); }
  void on_message(ProcessId from, const PayloadPtr& payload) override {
    received.emplace_back(from, payload->type_name());
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() {
    for (std::uint32_t i = 0; i < 4; ++i) {
      auto node = std::make_unique<RecordingNode>(sim_, ProcessId(i));
      nodes_.push_back(node.get());
      sim_.add_node(std::move(node));
    }
    sim_.merge_all();
    // Give every node a view so sends are legal; same view id everywhere.
    for (auto* node : nodes_) {
      node->deliver_view(View{ViewId(1), ProcessSet::range(4)});
    }
  }

  RecordingNode& node(std::uint32_t i) { return *nodes_[i]; }

  Simulator sim_{SimulatorOptions{.seed = 99, .latency = {}}};
  std::vector<RecordingNode*> nodes_;
};

TEST_F(NetworkTest, DeliversBetweenConnectedProcesses) {
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("ping"));
  sim_.run_to_quiescence();
  ASSERT_EQ(node(1).received.size(), 1u);
  EXPECT_EQ(node(1).received[0].first, ProcessId(0));
  EXPECT_EQ(node(1).received[0].second, "ping");
  EXPECT_EQ(sim_.network().stats().messages_delivered, 1u);
}

TEST_F(NetworkTest, LoopbackDeliversToSelf) {
  node(2).send(ProcessId(2), std::make_shared<TestPayload>("self"));
  sim_.run_to_quiescence();
  ASSERT_EQ(node(2).received.size(), 1u);
  EXPECT_EQ(node(2).received[0].first, ProcessId(2));
}

TEST_F(NetworkTest, LoopbackFromTheHighestIdDeliversToSelf) {
  // Regression: a self-send must not consult the pair tables at all —
  // tri_index(p, p) for the largest registered id computes an index one
  // past the end of link_epochs_ (caught by ASan at exactly-sized n).
  node(3).send(ProcessId(3), std::make_shared<TestPayload>("self"));
  sim_.run_to_quiescence();
  ASSERT_EQ(node(3).received.size(), 1u);
  EXPECT_EQ(node(3).received[0].first, ProcessId(3));
}

TEST_F(NetworkTest, BroadcastReachesAllViewMembersIncludingSelf) {
  node(0).broadcast(std::make_shared<TestPayload>("all"));
  sim_.run_to_quiescence();
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(node(i).received.size(), 1u) << "node " << i;
  }
}

TEST_F(NetworkTest, FifoPerPairDespiteRandomLatency) {
  for (int i = 0; i < 50; ++i) {
    node(0).send(ProcessId(1),
                 std::make_shared<TestPayload>("m" + std::to_string(i)));
  }
  sim_.run_to_quiescence();
  ASSERT_EQ(node(1).received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(node(1).received[static_cast<std::size_t>(i)].second,
              "m" + std::to_string(i));
  }
}

TEST_F(NetworkTest, SendAcrossPartitionIsDropped) {
  sim_.set_components({ProcessSet::of({0}), ProcessSet::of({1, 2, 3})});
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("lost"));
  sim_.run_to_quiescence();
  EXPECT_TRUE(node(1).received.empty());
  EXPECT_GE(sim_.network().stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, InFlightMessageLostWhenPartitionCutsIt) {
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("in-flight"));
  // Partition before the latency elapses: the message must die.
  sim_.set_components({ProcessSet::of({0}), ProcessSet::of({1, 2, 3})});
  sim_.run_to_quiescence();
  EXPECT_TRUE(node(1).received.empty());
}

TEST_F(NetworkTest, HealedPartitionDoesNotResurrectOldMessages) {
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("stale"));
  sim_.set_components({ProcessSet::of({0}), ProcessSet::of({1, 2, 3})});
  sim_.merge_all();  // heal immediately, before the delivery time
  sim_.run_to_quiescence();
  EXPECT_TRUE(node(1).received.empty());
}

TEST_F(NetworkTest, CrashDropsDeliveriesToAndFromTheProcess) {
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("to-crashed"));
  sim_.crash(ProcessId(1));
  sim_.run_to_quiescence();
  EXPECT_TRUE(node(1).received.empty());
  EXPECT_FALSE(sim_.network().alive(ProcessId(1)));
  EXPECT_FALSE(sim_.network().connected(ProcessId(0), ProcessId(1)));
}

TEST_F(NetworkTest, RecoveryPlacesProcessInOwnComponent) {
  sim_.crash(ProcessId(1));
  sim_.recover(ProcessId(1));
  EXPECT_TRUE(sim_.network().alive(ProcessId(1)));
  EXPECT_FALSE(sim_.network().connected(ProcessId(0), ProcessId(1)));
  EXPECT_EQ(sim_.network().component_of(ProcessId(1)), ProcessSet::of({1}));
}

TEST_F(NetworkTest, LiveComponentsReflectTopology) {
  sim_.set_components({ProcessSet::of({0, 2}), ProcessSet::of({1, 3})});
  const auto components = sim_.network().live_components();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], ProcessSet::of({0, 2}));
  EXPECT_EQ(components[1], ProcessSet::of({1, 3}));
}

TEST_F(NetworkTest, DropFilterInterceptsMatchingSends) {
  sim_.network().set_drop_filter([](const Envelope& env) {
    return env.payload->type_name() == "censored";
  });
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("censored"));
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("ok"));
  sim_.run_to_quiescence();
  ASSERT_EQ(node(1).received.size(), 1u);
  EXPECT_EQ(node(1).received[0].second, "ok");
}

TEST_F(NetworkTest, StatsCountBytes) {
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("x", 100));
  sim_.run_to_quiescence();
  EXPECT_EQ(sim_.network().stats().bytes_sent, 100u);
}

TEST_F(NetworkTest, FilteredSendsAreNotBilledAsTraffic) {
  sim_.network().set_drop_filter([](const Envelope& env) {
    return env.payload->type_name() == "censored";
  });
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("censored", 100));
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("ok", 40));
  sim_.run_to_quiescence();
  const auto stats = sim_.network().stats();
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.messages_filtered, 1u);
  EXPECT_EQ(stats.messages_dropped, 1u);
  // Only the admitted message counts as sent bytes; the filtered one is
  // accounted separately.
  EXPECT_EQ(stats.bytes_sent, 40u);
  EXPECT_EQ(stats.bytes_rejected, 100u);
}

TEST_F(NetworkTest, UnroutableSendsAreNotBilledAsTraffic) {
  sim_.set_components({ProcessSet::of({0}), ProcessSet::of({1, 2, 3})});
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("lost", 64));
  sim_.run_to_quiescence();
  const auto stats = sim_.network().stats();
  EXPECT_EQ(stats.messages_unroutable, 1u);
  EXPECT_EQ(stats.bytes_sent, 0u);
  EXPECT_EQ(stats.bytes_rejected, 64u);
}

TEST_F(NetworkTest, InFlightLossIsCountedAsLostNotRejected) {
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("cut", 64));
  sim_.set_components({ProcessSet::of({0}), ProcessSet::of({1, 2, 3})});
  sim_.run_to_quiescence();
  const auto stats = sim_.network().stats();
  EXPECT_EQ(stats.messages_lost_in_flight, 1u);
  // The message was admitted to a live channel, so its bytes were sent;
  // the partition killed it in flight.
  EXPECT_EQ(stats.bytes_sent, 64u);
  EXPECT_EQ(stats.bytes_rejected, 0u);
}

// ---- FIFO bookkeeping across partition heals -------------------------------

TEST_F(NetworkTest, EpochBumpClearsFifoTailBothDirections) {
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("a"));
  node(1).send(ProcessId(0), std::make_shared<TestPayload>("b"));
  ASSERT_TRUE(sim_.network().fifo_tail(ProcessId(0), ProcessId(1)).has_value());
  ASSERT_TRUE(sim_.network().fifo_tail(ProcessId(1), ProcessId(0)).has_value());
  sim_.set_components({ProcessSet::of({0}), ProcessSet::of({1, 2, 3})});
  // The cut loses both in-flight messages, so neither direction may keep
  // a FIFO constraint.
  EXPECT_FALSE(sim_.network().fifo_tail(ProcessId(0), ProcessId(1)).has_value());
  EXPECT_FALSE(sim_.network().fifo_tail(ProcessId(1), ProcessId(0)).has_value());
  // Pairs that stayed connected keep theirs.
  node(1).send(ProcessId(2), std::make_shared<TestPayload>("c"));
  EXPECT_TRUE(sim_.network().fifo_tail(ProcessId(1), ProcessId(2)).has_value());
}

TEST_F(NetworkTest, CrashClearsFifoTailOfTheProcessLinks) {
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("a"));
  sim_.crash(ProcessId(1));
  EXPECT_FALSE(sim_.network().fifo_tail(ProcessId(0), ProcessId(1)).has_value());
}

TEST_F(NetworkTest, HealedLinkIsNotDelayedByGhostOfDroppedMessage) {
  // Many sends at one instant drive the FIFO tail towards the latency
  // maximum (it is the running max of the sampled delivery times).
  for (int i = 0; i < 200; ++i) {
    node(0).send(ProcessId(1), std::make_shared<TestPayload>("ghost"));
  }
  const auto ghost_tail = sim_.network().fifo_tail(ProcessId(0), ProcessId(1));
  ASSERT_TRUE(ghost_tail.has_value());

  // Cut and immediately heal: every ghost dies, and the first message on
  // the healed link must be scheduled from its own latency sample, not
  // behind the dead messages' tail.
  sim_.set_components({ProcessSet::of({0}), ProcessSet::of({1, 2, 3})});
  sim_.merge_all();
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("fresh"));
  const auto fresh_tail = sim_.network().fifo_tail(ProcessId(0), ProcessId(1));
  ASSERT_TRUE(fresh_tail.has_value());
  // Without the epoch-bump reset this is max(sample, ghost_tail), which
  // can never be smaller than the ghost tail. (Seed 99: the single fresh
  // sample lands below the max of 200 ghost samples.)
  EXPECT_LT(*fresh_tail, *ghost_tail);

  sim_.run_to_quiescence();
  ASSERT_EQ(node(1).received.size(), 1u);
  EXPECT_EQ(node(1).received[0].second, "fresh");
}

TEST_F(NetworkTest, RejectsOverlappingComponentGroups) {
  EXPECT_THROW(
      sim_.set_components({ProcessSet::of({0, 1}), ProcessSet::of({1, 2})}),
      InvariantViolation);
}

// ---- Node view gate ---------------------------------------------------------

TEST_F(NetworkTest, MessageFromOlderViewIsDiscarded) {
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("old-view"));
  // Receiver advances to view 2 before delivery.
  node(1).deliver_view(View{ViewId(2), ProcessSet::of({1, 2})});
  sim_.run_to_quiescence();
  EXPECT_TRUE(node(1).received.empty());
}

TEST_F(NetworkTest, MessageForFutureViewIsBufferedUntilViewArrives) {
  // Sender already in view 3; receiver still in view 1.
  node(0).deliver_view(View{ViewId(3), ProcessSet::of({0, 1})});
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("early"));
  sim_.run_to_quiescence();
  EXPECT_TRUE(node(1).received.empty());  // buffered, not delivered
  node(1).deliver_view(View{ViewId(3), ProcessSet::of({0, 1})});
  ASSERT_EQ(node(1).received.size(), 1u);
  EXPECT_EQ(node(1).received[0].second, "early");
}

TEST_F(NetworkTest, BufferedMessageForSkippedViewIsDropped) {
  node(0).deliver_view(View{ViewId(3), ProcessSet::of({0, 1})});
  node(0).send(ProcessId(1), std::make_shared<TestPayload>("skipped"));
  sim_.run_to_quiescence();
  // Receiver jumps straight to view 5: the view-3 message dies.
  node(1).deliver_view(View{ViewId(5), ProcessSet::of({0, 1})});
  EXPECT_TRUE(node(1).received.empty());
}

TEST_F(NetworkTest, StaleViewReportIsIgnored) {
  node(0).deliver_view(View{ViewId(5), ProcessSet::of({0})});
  const std::size_t views_before = node(0).views.size();
  node(0).deliver_view(View{ViewId(4), ProcessSet::of({0})});
  EXPECT_EQ(node(0).views.size(), views_before);
}

TEST_F(NetworkTest, CrashClearsVolatileStateAndStopsDelivery) {
  node(1).crash();
  EXPECT_FALSE(node(1).alive());
  EXPECT_FALSE(node(1).current_view().has_value());
  node(1).deliver_view(View{ViewId(9), ProcessSet::of({1})});
  EXPECT_TRUE(node(1).views.size() == 1u);  // only the fixture's view
}

TEST_F(NetworkTest, ViewMustContainTheReceiver) {
  EXPECT_THROW(node(0).deliver_view(View{ViewId(9), ProcessSet::of({1, 2})}),
               InvariantViolation);
}

}  // namespace
}  // namespace dynvote::sim
