// Targeted coverage of under-exercised corners: the Lemma-2 learning
// chain, voluntary leaves under the blocking baseline, same-membership
// attempt overwrite with knowledge arrays, latency-model bounds, and a
// larger-scale smoke run.
#include <gtest/gtest.h>

#include "dv/optimized_protocol.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"

namespace dynvote {
namespace {

const OptimizedDvProtocol& opt(Cluster& cluster, std::uint32_t p) {
  return dynamic_cast<const OptimizedDvProtocol&>(
      cluster.protocol(ProcessId(p)));
}

// ---- Lemma 2: a later shared attempt resolves the earlier one --------------

TEST(Lemma2Chain, LaterFormedSessionResolvesEarlierAmbiguity) {
  // p2 misses the attempt round of session A (all five), so A is
  // ambiguous at p2. Then a second session B forms in a smaller view
  // {1,2,3} that p2 completes. When p2 later meets p1 again, p1's
  // Last_Formed(p2) = B > A gives no direct verdict on A (the paper's
  // third case) — but B itself was in p2's ambiguous set and resolves by
  // adoption, superseding A exactly as Lemma 2's induction argues.
  Cluster cluster([] {
    ClusterOptions options;
    options.kind = ProtocolKind::kOptimized;
    options.n = 5;
    options.sim.seed = 201;
    return options;
  }());
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 4);
  cluster.start();  // A = ({0..4},1): all form but p2
  ASSERT_EQ(opt(cluster, 2).state().ambiguous.size(), 1u);
  faults.clear();

  // B = ({1,2,3}, 2) — majority of A — forms normally, clearing p2's
  // list through the ordinary form step.
  cluster.partition({ProcessSet::of({1, 2, 3}), ProcessSet::of({0, 4})});
  cluster.settle();
  ASSERT_TRUE(cluster.protocol(ProcessId(2)).is_primary());
  EXPECT_TRUE(opt(cluster, 2).state().ambiguous.empty());
  EXPECT_GT(opt(cluster, 2).state().last_primary->number, 1);
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(Lemma2Chain, AdoptionThroughTheLaterAttempt) {
  // Same setup, but p2 ALSO misses B's attempt round. A resolves already
  // during B (adoption from Last_Formed gossip); B itself resolves at
  // the next encounter with a B-member, leaving p2 fully caught up
  // without ever completing a form step.
  Cluster cluster([] {
    ClusterOptions options;
    options.kind = ProtocolKind::kOptimized;
    options.n = 5;
    options.sim.seed = 202;
    options.config.min_quorum = 3;  // keeps the probe view from forming
    return options;
  }());
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt");
  cluster.start();
  cluster.partition({ProcessSet::of({1, 2, 3}), ProcessSet::of({0, 4})});
  cluster.settle();
  // During B's attempt step p2 already learned (from p1's and p3's
  // Last_Formed) that A was formed, adopted it, and then recorded B:
  // exactly one ambiguous session remains, and Last_Primary = A.
  ASSERT_EQ(opt(cluster, 2).state().ambiguous.size(), 1u);
  EXPECT_EQ(opt(cluster, 2).state().last_primary->members,
            ProcessSet::range(5));
  EXPECT_GE(opt(cluster, 2).gc_adoptions(), 1u);
  faults.clear();

  // A quorum-less probe view with p1: learning runs, nothing can form.
  cluster.partition({ProcessSet::of({1, 2}), ProcessSet::of({3}),
                     ProcessSet::of({0, 4})});
  cluster.settle();
  const auto& state = opt(cluster, 2).state();
  ASSERT_TRUE(state.last_primary.has_value());
  EXPECT_EQ(state.last_primary->members, ProcessSet::of({1, 2, 3}));  // B
  EXPECT_TRUE(state.ambiguous.empty());  // A superseded, B resolved
  EXPECT_GE(opt(cluster, 2).gc_adoptions(), 1u);
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

// ---- overwrite rule with knowledge arrays -----------------------------------

TEST(OverwriteRule, SameMembershipAttemptKeepsOnlyTheLatest) {
  // The same view fails to form twice: the second attempt overwrites the
  // first (same membership), including a fresh knowledge array.
  Cluster cluster([] {
    ClusterOptions options;
    options.kind = ProtocolKind::kOptimized;
    options.n = 3;
    options.sim.seed = 203;
    return options;
  }());
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(0), "dv.attempt", 2);
  faults.drop_to(ProcessId(1), "dv.attempt", 2);
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2})});
  cluster.settle();
  ASSERT_EQ(opt(cluster, 0).state().ambiguous.size(), 1u);
  const SessionNumber first = opt(cluster, 0).state().ambiguous[0].session.number;

  cluster.oracle().inject_view(ProcessSet::of({0, 1}));
  cluster.settle();
  // Second failed attempt with the same membership: still ONE record,
  // with the higher number.
  const auto& ambiguous = opt(cluster, 0).state().ambiguous;
  ASSERT_EQ(ambiguous.size(), 1u);
  EXPECT_GT(ambiguous[0].session.number, first);
  EXPECT_EQ(ambiguous[0].session.members, ProcessSet::of({0, 1}));
}

// ---- voluntary leave under the blocking baseline -----------------------------

TEST(VoluntaryLeave, OneLeaverStallsTheBlockingProtocolOnly) {
  // The paper's sharpest criticism of the blocking class: "one process
  // that voluntarily leaves the system may cause all the other
  // participants to block." A leaver here is a process that disconnects
  // right after the attempt round it participated in was cut short.
  for (ProtocolKind kind :
       {ProtocolKind::kBlockingDynamic, ProtocolKind::kOptimized}) {
    ClusterOptions options;
    options.kind = kind;
    options.n = 5;
    options.sim.seed = 204;
    Cluster cluster(options);
    FaultInjector faults(cluster.sim().network());
    for (std::uint32_t p = 0; p < 5; ++p) {
      faults.drop_to(ProcessId(p), "dv.attempt", 4);
    }
    cluster.merge();
    cluster.settle();  // everyone attempted ({0..4},1); nobody formed
    faults.clear();
    // p4 leaves for good; the rest regroup.
    cluster.partition({ProcessSet::of({0, 1, 2, 3}), ProcessSet::of({4})});
    cluster.settle();
    if (kind == ProtocolKind::kBlockingDynamic) {
      EXPECT_FALSE(cluster.live_primary().has_value());
      EXPECT_GT(cluster.checker().blocked_sessions(), 0u);
    } else {
      ASSERT_TRUE(cluster.live_primary().has_value());
      EXPECT_EQ(cluster.live_primary()->members, ProcessSet::of({0, 1, 2, 3}));
    }
  }
}

// ---- latency model bounds -----------------------------------------------------

TEST(LatencyModel, CustomBoundsAreHonoredEndToEnd) {
  ClusterOptions options;
  options.kind = ProtocolKind::kBasic;
  options.n = 3;
  options.sim.seed = 205;
  options.sim.latency = sim::LatencyModel{1000, 1001};
  options.membership.detection_delay_min = 10;
  options.membership.detection_delay_max = 11;
  Cluster cluster(options);
  cluster.start();
  // Views by ~11us; two rounds of ~1000us each; forming must therefore
  // land in roughly [2010, 2050]us — far beyond the default model.
  ASSERT_TRUE(cluster.live_primary().has_value());
  EXPECT_GE(cluster.sim().now(), 2010u);
  EXPECT_LE(cluster.sim().now(), 2100u);
}

// ---- scale smoke ----------------------------------------------------------------

TEST(Scale, TwentyFiveProcessChainStaysCorrect) {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 25;
  options.sim.seed = 206;
  Cluster cluster(options);
  cluster.start();
  ASSERT_TRUE(cluster.live_primary().has_value());
  // Halve repeatedly: 25 -> 13 -> 7 -> 4.
  ProcessSet current = ProcessSet::range(25);
  while (current.size() > 4) {
    ProcessSet next;
    const auto& members = current.members();
    for (std::size_t i = members.size() / 2 + (members.size() % 2 ? 0 : 1);
         i < members.size(); ++i) {
      next.insert(members[i]);  // keep the top-ranked half (wins any tie)
    }
    std::vector<ProcessSet> groups{next, current.set_difference(next)};
    cluster.partition(groups);
    cluster.settle();
    ASSERT_TRUE(cluster.live_primary().has_value()) << next.to_string();
    EXPECT_EQ(cluster.live_primary()->members, next);
    current = next;
  }
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

}  // namespace
}  // namespace dynvote
