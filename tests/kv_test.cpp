// Integration tests: the replicated key-value store on top of the
// primary-component service — writes gated on primacy, state transfer,
// and application-level split-brain detection.
#include <gtest/gtest.h>

#include "app/replicated_kv.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"

namespace dynvote::app {
namespace {

ClusterOptions options_for(ProtocolKind kind, std::uint64_t seed = 51) {
  ClusterOptions options;
  options.kind = kind;
  options.n = 5;
  options.sim.seed = seed;
  return options;
}

TEST(Version, OrdersByPrimaryThenSequenceThenWriter) {
  EXPECT_LT((Version{1, 5, ProcessId(0)}), (Version{2, 1, ProcessId(0)}));
  EXPECT_LT((Version{2, 1, ProcessId(0)}), (Version{2, 2, ProcessId(0)}));
  EXPECT_LT((Version{2, 2, ProcessId(0)}), (Version{2, 2, ProcessId(1)}));
  EXPECT_EQ((Version{2, 2, ProcessId(3)}), (Version{2, 2, ProcessId(3)}));
  EXPECT_EQ((Version{3, 1, ProcessId(4)}).to_string(), "v(3.1@p4)");
}

TEST(Version, TwoWritersInOnePrimaryNeverCollide) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  KvStore store(cluster);
  const auto v0 = store.write(ProcessId(0), "k", "a");
  const auto v1 = store.write(ProcessId(1), "k", "b");
  ASSERT_TRUE(v0 && v1);
  EXPECT_NE(*v0, *v1);
}

TEST(ReplicatedKv, WritesAcceptedOnlyInPrimary) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  KvStore store(cluster);
  EXPECT_TRUE(store.write(ProcessId(0), "k", "v1").has_value());

  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_TRUE(store.write(ProcessId(0), "k", "v2").has_value());
  EXPECT_FALSE(store.write(ProcessId(3), "k", "minority").has_value());
  EXPECT_EQ(store.accepted_writes(), 2u);
}

TEST(ReplicatedKv, ReadsSeeLocalReplicaState) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  KvStore store(cluster);
  store.write(ProcessId(0), "city", "jerusalem");
  EXPECT_EQ(store.replica(ProcessId(0)).read("city"), "jerusalem");
  EXPECT_EQ(store.replica(ProcessId(1)).read("city"), std::nullopt);
  store.sync_primary();
  EXPECT_EQ(store.replica(ProcessId(1)).read("city"), "jerusalem");
}

TEST(ReplicatedKv, SyncConvergesToHighestVersion) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  KvStore store(cluster);
  store.write(ProcessId(0), "k", "old");
  store.sync_primary();
  store.write(ProcessId(1), "k", "new");
  store.sync_primary();
  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_EQ(store.replica(ProcessId(p)).read("k"), "new") << "p" << p;
  }
}

TEST(ReplicatedKv, PartitionedMinorityKeepsStaleDataWithoutConflict) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  KvStore store(cluster);
  store.write(ProcessId(0), "k", "v1");
  store.sync_primary();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  store.write(ProcessId(0), "k", "v2");
  store.sync_primary();
  EXPECT_EQ(store.replica(ProcessId(3)).read("k"), "v1");  // stale, fine
  EXPECT_TRUE(store.audit().empty());
  cluster.merge();
  cluster.settle();
  store.sync_primary();
  EXPECT_EQ(store.replica(ProcessId(3)).read("k"), "v2");
  EXPECT_TRUE(store.audit().empty());
}

TEST(ReplicatedKv, ConsistentProtocolNeverDivergesUnderChurn) {
  Cluster cluster(options_for(ProtocolKind::kOptimized, 53));
  cluster.start();
  KvStore store(cluster);
  int seq = 0;
  auto write_everywhere = [&] {
    for (std::uint32_t p = 0; p < 5; ++p) {
      store.write(ProcessId(p), "key" + std::to_string(p % 2),
                  "val" + std::to_string(seq++));
    }
    store.sync_primary();
  };
  write_everywhere();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  write_everywhere();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  write_everywhere();
  cluster.merge();
  cluster.settle();
  write_everywhere();
  EXPECT_TRUE(store.audit().empty());
  EXPECT_GT(store.accepted_writes(), 0u);
}

TEST(ReplicatedKv, NaiveProtocolProducesApplicationVisibleSplitBrain) {
  // The paper's section-1 scenario at the application level: both sides
  // accept writes, and the audit catches the conflict.
  Cluster cluster(options_for(ProtocolKind::kNaiveDynamic));
  KvStore store(cluster);
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.info", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();

  // Both components are "the primary" and both acknowledge writes.
  ASSERT_TRUE(store.write(ProcessId(0), "balance", "100").has_value());
  ASSERT_TRUE(store.write(ProcessId(2), "balance", "999").has_value());
  const auto divergences = store.audit();
  EXPECT_FALSE(divergences.empty());
}

TEST(ReplicatedKv, SameScenarioWithOurProtocolStaysClean) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  KvStore store(cluster);
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();

  ASSERT_TRUE(store.write(ProcessId(0), "balance", "100").has_value());
  EXPECT_FALSE(store.write(ProcessId(2), "balance", "999").has_value());
  EXPECT_TRUE(store.audit().empty());
}

}  // namespace
}  // namespace dynvote::app
