// Unit + property tests for the delta-WAL persistence layer (dv/wal.hpp):
// delta codecs and replay equivalence, crash recovery after every commit
// (including mid-compaction), the replay-equals-snapshot cross-check,
// legacy snapshot compatibility, and per-step stable-write counts of the
// protocols.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "dv/basic_protocol.hpp"
#include "dv/state.hpp"
#include "dv/wal.hpp"
#include "harness/cluster.hpp"
#include "harness/schedule.hpp"
#include "sim/stable_storage.hpp"
#include "util/ensure.hpp"

namespace dynvote {
namespace {

const ProcessId kSelf{0};

ProtocolState sample_state() {
  return ProtocolState::initial(ProcessSet::of({0, 1, 2, 3, 4}), kSelf);
}

std::vector<StateDelta> sample_deltas() {
  ParticipantTracker tracker =
      ParticipantTracker::initial(ProcessSet::of({0, 1, 2, 5}), kSelf);
  return {
      StateDelta::session_number(41),
      StateDelta::attempt(Session{ProcessSet::of({0, 1, 2}), 7}, 0),
      StateDelta::attempt(Session{ProcessSet::of({0, 1}), 9}, 2),
      StateDelta::form(Session{ProcessSet::of({0, 1, 2}), 8}),
      StateDelta::adopt(Session{ProcessSet::of({0, 2}), 10}),
      StateDelta::learned(7, ProcessId{2}, FormedKnowledge::kFormed),
      StateDelta::learned(9, ProcessId{1}, FormedKnowledge::kNotFormed),
      StateDelta::erase_ambiguous({7, 9}),
      StateDelta::merge_participants(tracker),
  };
}

TEST(StateDelta, EncodeDecodeRoundTripsEveryKind) {
  for (const StateDelta& delta : sample_deltas()) {
    Encoder enc;
    delta.encode(enc);
    Decoder dec(enc.bytes());
    const StateDelta back = StateDelta::decode(dec);
    EXPECT_TRUE(dec.exhausted());
    EXPECT_EQ(back, delta);
  }
}

TEST(StateDelta, DecodeRejectsUnknownKind) {
  Encoder enc;
  enc.put_u8(0xEE);
  Decoder dec(enc.bytes());
  EXPECT_THROW(StateDelta::decode(dec), CodecError);
}

TEST(StateDelta, ApplyMirrorsTheStateMutators) {
  // Drive a state through every mutator while mirroring each mutation
  // with its delta on a replica; the trajectories must stay identical.
  ProtocolState live = sample_state();
  ProtocolState replica = live;
  auto mirror = [&](const StateDelta& delta) {
    delta.apply(replica, kSelf);
    ASSERT_EQ(replica, live);
  };

  const Session s1{ProcessSet::of({0, 1, 2}), 1};
  live.session_number = s1.number;
  live.record_attempt(s1, kSelf);
  mirror(StateDelta::attempt(s1, 0));

  const Session s2{ProcessSet::of({0, 1}), 2};
  live.session_number = s2.number;
  live.record_attempt(s2, kSelf);
  mirror(StateDelta::attempt(s2, 0));

  live.find_ambiguous(1)->set_knowledge(ProcessId{1}, FormedKnowledge::kFormed);
  mirror(StateDelta::learned(1, ProcessId{1}, FormedKnowledge::kFormed));

  live.adopt_formed(Session{ProcessSet::of({0, 1, 2}), 1});
  mirror(StateDelta::adopt(Session{ProcessSet::of({0, 1, 2}), 1}));

  const Session s3{ProcessSet::of({0, 3}), 3};
  live.session_number = s3.number;
  live.record_attempt(s3, kSelf);
  mirror(StateDelta::attempt(s3, 0));

  std::erase_if(live.ambiguous, [](const AmbiguousSession& a) {
    return a.session.number == 3;
  });
  mirror(StateDelta::erase_ambiguous({3}));

  const Session s4{ProcessSet::of({0, 1, 2, 3, 4}), 4};
  live.session_number = s4.number;
  live.apply_form(s4);
  mirror(StateDelta::form(s4));
}

TEST(StateDelta, AttemptReplaysTheUnsoundTruncation) {
  // A writer configured with ambiguous_record_limit truncates after
  // recording; the delta must reproduce exactly that (the
  // LastAttemptOnly baseline's persistence depends on it).
  ProtocolState live = sample_state();
  ProtocolState replica = live;
  for (SessionNumber n = 1; n <= 4; ++n) {
    const Session s{ProcessSet::of({0, static_cast<std::uint32_t>(n)}), n};
    live.session_number = n;
    live.record_attempt(s, kSelf);
    if (live.ambiguous.size() > 1) {
      live.ambiguous.erase(live.ambiguous.begin(), live.ambiguous.end() - 1);
    }
    StateDelta::attempt(s, 1).apply(replica, kSelf);
    ASSERT_EQ(replica, live);
  }
  EXPECT_EQ(live.ambiguous.size(), 1u);
}

TEST(Checkpoint, RoundTripsAndReadsLegacySnapshots) {
  ProtocolState state = sample_state();
  state.session_number = 12;
  state.record_attempt(Session{ProcessSet::of({0, 1, 2}), 12}, kSelf);

  Encoder enc;
  encode_checkpoint(enc, state, 77);
  const CheckpointRecord record = decode_checkpoint(enc.bytes());
  EXPECT_EQ(record.state, state);
  EXPECT_EQ(record.covers_lsn, 77u);

  // A raw ProtocolState (what snapshot mode and pre-WAL disks hold)
  // decodes through the same entry point, covering nothing.
  Encoder legacy;
  state.encode(legacy);
  const CheckpointRecord old = decode_checkpoint(legacy.bytes());
  EXPECT_EQ(old.state, state);
  EXPECT_EQ(old.covers_lsn, 0u);
}

// Options tuned so the tests cross the compaction threshold quickly.
PersistenceOptions tight_compaction() {
  PersistenceOptions options;
  options.min_compact_bytes = 96;
  options.compact_factor = 1.5;
  return options;
}

/// Recovers a fresh WalPersistence over (a copy of) `storage` and
/// returns the state it reads.
std::optional<ProtocolState> recover_from(sim::StableStorage storage,
                                          const PersistenceOptions& options) {
  WalPersistence wal(storage, nullptr, "dv.state", kSelf, options);
  return wal.recover();
}

TEST(WalPersistence, CrashAfterEveryCommitRecoversTheExactState) {
  sim::StableStorage storage;
  const PersistenceOptions options = tight_compaction();
  WalPersistence wal(storage, nullptr, "dv.state", kSelf, options);
  ProtocolState state = sample_state();
  wal.checkpoint(state);

  for (SessionNumber n = 1; n <= 40; ++n) {
    const Session s{ProcessSet::of({0, 1, static_cast<std::uint32_t>(n % 5)}),
                    n};
    state.session_number = n;
    state.record_attempt(s, kSelf);
    wal.stage(StateDelta::attempt(s, 0));
    if (n % 3 == 0) {
      state.find_ambiguous(n)->set_knowledge(ProcessId{1},
                                             FormedKnowledge::kNotFormed);
      wal.stage(StateDelta::learned(n, ProcessId{1},
                                    FormedKnowledge::kNotFormed));
    }
    if (n % 7 == 0) {
      state.apply_form(s);
      wal.stage(StateDelta::form(s));
    }
    wal.commit(state);

    // Crash here: a recovery over a copy of the disk must reproduce the
    // live state, whatever mix of checkpoint + log tail is on it.
    const auto recovered = recover_from(storage, options);
    ASSERT_TRUE(recovered.has_value());
    ASSERT_EQ(*recovered, state) << "after commit " << n;
  }
  // The loop must have crossed the compaction threshold along the way,
  // or the test proved nothing about checkpoint + tail recovery.
  EXPECT_GT(storage.writes(), 41u);
}

TEST(WalPersistence, MidCompactionCrashDoesNotDoubleApply) {
  sim::StableStorage storage;
  const PersistenceOptions options = tight_compaction();
  WalPersistence wal(storage, nullptr, "dv.state", kSelf, options);
  ProtocolState state = sample_state();
  wal.checkpoint(state);

  // Snapshot the disk in the window where the fresh checkpoint is
  // written but the log records it covers are still present.
  std::optional<sim::StableStorage> disk_at_crash;
  wal.set_before_truncate_hook([&] { disk_at_crash = storage; });

  SessionNumber n = 0;
  while (!disk_at_crash.has_value()) {
    ++n;
    ASSERT_LT(n, 1000) << "compaction never triggered";
    const Session s{ProcessSet::of({0, 1}), n};
    state.session_number = n;
    state.record_attempt(s, kSelf);
    wal.stage(StateDelta::attempt(s, 0));
    wal.commit(state);
  }

  // The captured disk really is mid-compaction: covered records remain.
  EXPECT_GT(disk_at_crash->log_bytes(disk_at_crash->intern("dv.state.wal")),
            0u);
  const auto recovered = recover_from(*disk_at_crash, options);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, state);
}

TEST(WalPersistence, CrossCheckCatchesAMutationNobodyStaged) {
  sim::StableStorage storage;
  PersistenceOptions options;  // cross_check on by default
  WalPersistence wal(storage, nullptr, "dv.state", kSelf, options);
  ProtocolState state = sample_state();
  wal.checkpoint(state);

  state.session_number = 9;  // mutated... and never staged
  EXPECT_THROW(wal.commit(state), InvariantViolation);
}

TEST(WalPersistence, EmptyCommitWritesNothing) {
  sim::StableStorage storage;
  WalPersistence wal(storage, nullptr, "dv.state", kSelf, {});
  ProtocolState state = sample_state();
  wal.checkpoint(state);

  const std::uint64_t writes_before = storage.writes();
  wal.commit(state);  // nothing staged: the disk already covers `state`
  wal.commit(state);
  EXPECT_EQ(storage.writes(), writes_before);
  EXPECT_EQ(wal.persists(), 2u);
}

TEST(WalPersistence, EmptyDiskRecoversToNothing) {
  sim::StableStorage storage;
  WalPersistence wal(storage, nullptr, "dv.state", kSelf, {});
  EXPECT_EQ(wal.recover(), std::nullopt);

  // destroy() wipes checkpoint and log together; recovery sees footnote
  // 4's destroyed disk, not a torn state.
  ProtocolState state = sample_state();
  wal.checkpoint(state);
  state.session_number = 3;
  state.record_attempt(Session{ProcessSet::of({0, 1}), 3}, kSelf);
  wal.stage(StateDelta::attempt(Session{ProcessSet::of({0, 1}), 3}, 0));
  wal.commit(state);
  storage.destroy();
  EXPECT_EQ(wal.recover(), std::nullopt);
}

TEST(WalPersistence, ReadsADiskWrittenInSnapshotMode) {
  // A disk written by the legacy snapshot path must be adoptable by a
  // WAL-mode recovery (rolling upgrade of the persistence format).
  sim::StableStorage storage;
  PersistenceOptions snapshot;
  snapshot.mode = PersistenceMode::kSnapshot;
  WalPersistence old(storage, nullptr, "dv.state", kSelf, snapshot);
  ProtocolState state = sample_state();
  state.session_number = 5;
  state.record_attempt(Session{ProcessSet::of({0, 1, 2}), 5}, kSelf);
  old.checkpoint(state);

  PersistenceOptions wal_options;
  WalPersistence wal(storage, nullptr, "dv.state", kSelf, wal_options);
  auto recovered = wal.recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, state);

  // And the adopted state keeps evolving through the WAL from there.
  state.session_number = 6;
  state.record_attempt(Session{ProcessSet::of({0, 2}), 6}, kSelf);
  wal.stage(StateDelta::attempt(Session{ProcessSet::of({0, 2}), 6}, 0));
  wal.commit(state);
  EXPECT_EQ(*recover_from(storage, wal_options), state);
}

TEST(WalPersistence, SnapshotModeKeepsTheLegacyByteFormat) {
  // Snapshot mode is the pre-WAL write path: the stored value must be
  // exactly ProtocolState::encode, with no checkpoint framing.
  sim::StableStorage storage;
  PersistenceOptions snapshot;
  snapshot.mode = PersistenceMode::kSnapshot;
  WalPersistence wal(storage, nullptr, "dv.state", kSelf, snapshot);
  ProtocolState state = sample_state();
  wal.commit(state);

  Encoder expected;
  state.encode(expected);
  EXPECT_EQ(storage.get("dv.state"), expected.bytes());
}

// ---- protocol-level coverage ---------------------------------------------

ClusterOptions cluster_options(ProtocolKind kind, std::uint32_t n,
                               std::uint64_t seed = 11) {
  ClusterOptions options;
  options.kind = kind;
  options.n = n;
  options.sim.seed = seed;
  return options;
}

std::uint64_t writes_of(Cluster& cluster, std::uint32_t p) {
  return cluster.sim().storage(ProcessId{p}).writes();
}

TEST(ProtocolPersistence, HappyPathStableWriteCountsPerStep) {
  // Section 4.4 demands one durable write per state-changing step and no
  // more. On the happy path (single view, one session) that is exactly:
  // the construction checkpoint, the attempt append, the form append.
  // A redundant persist or a missed elision changes these counts.
  for (const ProtocolKind kind :
       {ProtocolKind::kBasic, ProtocolKind::kOptimized,
        ProtocolKind::kCentralized, ProtocolKind::kThreePhaseRecovery}) {
    Cluster cluster(cluster_options(kind, 3));
    cluster.start();
    ASSERT_TRUE(cluster.live_primary().has_value());
    for (std::uint32_t p = 0; p < 3; ++p) {
      EXPECT_EQ(writes_of(cluster, p), 3u)
          << "protocol kind " << static_cast<int>(kind) << " process " << p;
    }
  }
}

TEST(ProtocolPersistence, ThreePhasePersistsParticipantMergeBeforePropose) {
  // Regression for a missed persist: with dynamic participants, the
  // decision step of the three-phase baseline merges the W/A sets, and
  // those must be durable before the propose round exposes them — one
  // extra stable write in the joining session (merge commit + attempt +
  // form), not two (which would mean the merge rode along with the
  // attempt, i.e. was sent before it was durable).
  ClusterOptions options =
      cluster_options(ProtocolKind::kThreePhaseRecovery, 3);
  options.config.dynamic_participants = true;
  Cluster cluster(options);
  cluster.start();
  ASSERT_TRUE(cluster.live_primary().has_value());
  const std::uint64_t before = writes_of(cluster, 0);

  cluster.add_process(ProcessId{3});
  cluster.merge();
  cluster.settle();
  ASSERT_EQ(cluster.live_primary()->members, ProcessSet::range(4));
  EXPECT_EQ(writes_of(cluster, 0) - before, 3u);
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(ProtocolPersistence, DiskLossRecoveryStartsAFreshCheckpoint) {
  Cluster cluster(cluster_options(ProtocolKind::kOptimized, 5));
  cluster.start();
  cluster.sim().crash_and_destroy_disk(ProcessId{4});
  cluster.settle();
  cluster.recover(ProcessId{4});
  cluster.merge();
  cluster.settle();
  EXPECT_TRUE(cluster.checker().check_all().empty());
  EXPECT_TRUE(cluster.live_primary().has_value());
}

class PersistenceChurnProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PersistenceChurnProperty, WalSurvivesCrashesAndKeepsC1) {
  // Churn with crashes and recoveries, WAL persistence and the
  // replay-equals-snapshot cross-check both on (the defaults): every
  // recovery replays checkpoint + log tail, every persist is audited,
  // and C1 must hold throughout.
  ScheduleOptions schedule_options;
  schedule_options.seed = 5'000 + GetParam();
  schedule_options.duration = SimTime{400'000};
  schedule_options.mean_event_gap = 60'000;
  const auto schedule =
      generate_schedule(ProcessSet::range(8), schedule_options);

  Cluster cluster(
      cluster_options(ProtocolKind::kOptimized, 8, GetParam()));
  sim::Simulator& sim = cluster.sim();
  for (const ScheduleEvent& event : schedule) {
    sim.queue().schedule_at(event.time, [&cluster, &event] {
      switch (event.kind) {
        case ScheduleEvent::Kind::kPartition:
          cluster.partition(event.groups);
          break;
        case ScheduleEvent::Kind::kMerge: {
          ProcessSet merged;
          for (const ProcessSet& g : event.groups) merged = merged.set_union(g);
          cluster.partition({merged});
          break;
        }
        case ScheduleEvent::Kind::kCrash:
          cluster.crash(event.process);
          break;
        case ScheduleEvent::Kind::kRecover:
          cluster.recover(event.process);
          break;
      }
    });
  }
  cluster.merge();
  cluster.settle();
  EXPECT_TRUE(cluster.checker().check_all().empty());
  // WAL appends happened (we exercised the log path, not just
  // checkpoints).
  EXPECT_GT(sim.metrics().counter_value("dv.storage.wal_appends"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceChurnProperty,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace dynvote
