// Unit tests: the consistency checker itself, driven with synthetic
// event streams (the checker must be trustworthy before its verdicts on
// protocols mean anything).
#include <gtest/gtest.h>

#include "harness/checker.hpp"

namespace dynvote {
namespace {

const ProcessSet kCore = ProcessSet::range(5);

Session session(std::initializer_list<std::uint32_t> members,
                SessionNumber number) {
  return Session{ProcessSet::of(members), number};
}

TEST(Checker, CleanExecutionHasNoViolations) {
  ConsistencyChecker checker(kCore);
  const Session s1 = session({0, 1, 2}, 1);
  for (std::uint32_t p : {0u, 1u, 2u}) {
    checker.on_attempt(100, ProcessId(p), s1);
    checker.on_formed(200, ProcessId(p), s1, 2);
  }
  EXPECT_TRUE(checker.check_all().empty());
  EXPECT_EQ(checker.formed_session_count(), 2u);  // F0 + s1
  EXPECT_EQ(checker.form_events(), 3u);
}

TEST(Checker, DetectsDuplicateSessionNumbers) {
  ConsistencyChecker checker(kCore);
  checker.on_attempt(1, ProcessId(0), session({0, 1, 2}, 1));
  checker.on_formed(2, ProcessId(0), session({0, 1, 2}, 1), 2);
  checker.on_attempt(1, ProcessId(3), session({2, 3, 4}, 1));
  checker.on_formed(2, ProcessId(3), session({2, 3, 4}, 1), 2);
  const auto violations = checker.check_basic();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, "dup-number");
}

TEST(Checker, DetectsConcurrentDisjointPrimaries) {
  ConsistencyChecker checker(kCore);
  checker.on_formed(100, ProcessId(0), session({0, 1}, 2), 2);
  checker.on_formed(150, ProcessId(3), session({2, 3, 4}, 3), 2);
  const auto violations = checker.check_basic();
  bool found = false;
  for (const auto& v : violations) found |= (v.kind == "split-brain");
  EXPECT_TRUE(found);
}

TEST(Checker, NoSplitBrainWhenIntervalsDoNotOverlap) {
  ConsistencyChecker checker(kCore);
  checker.on_formed(100, ProcessId(0), session({0, 1}, 2), 2);
  checker.on_primary_lost(150, ProcessId(0));
  checker.on_formed(200, ProcessId(3), session({2, 3, 4}, 3), 2);
  for (const auto& v : checker.check_basic()) {
    EXPECT_NE(v.kind, "split-brain") << v.detail;
  }
}

TEST(Checker, NoSplitBrainWhenSessionsIntersect) {
  // Transitional overlap between intersecting primaries is normal.
  ConsistencyChecker checker(kCore);
  checker.on_formed(100, ProcessId(0), session({0, 1, 2}, 2), 2);
  checker.on_formed(150, ProcessId(2), session({2, 3, 4}, 3), 2);
  for (const auto& v : checker.check_basic()) {
    EXPECT_NE(v.kind, "split-brain") << v.detail;
  }
}

TEST(Checker, OrderTotalityOverParticipationChains) {
  ConsistencyChecker checker(kCore);
  // F0 -> s1 (via p0,p1,p2) -> s2 (via p2).
  const Session s1 = session({0, 1, 2}, 1);
  const Session s2 = session({2, 3, 4}, 2);
  for (std::uint32_t p : {0u, 1u, 2u}) {
    checker.on_attempt(1, ProcessId(p), s1);
    checker.on_formed(2, ProcessId(p), s1, 2);
  }
  checker.on_primary_lost(3, ProcessId(2));
  for (std::uint32_t p : {2u, 3u, 4u}) {
    checker.on_attempt(4, ProcessId(p), s2);
    checker.on_formed(5, ProcessId(p), s2, 2);
  }
  EXPECT_TRUE(checker.check_order().empty());
}

TEST(Checker, DetectsIncomparableFormedSessions) {
  ConsistencyChecker checker(kCore);
  // Two formed sessions with no common participant beyond F0... both
  // connect to F0 but not to each other: ≺ is not total.
  const Session s1 = session({0, 1}, 1);
  const Session s2 = session({3, 4}, 2);
  checker.on_attempt(1, ProcessId(0), s1);
  checker.on_formed(2, ProcessId(0), s1, 2);
  checker.on_attempt(3, ProcessId(3), s2);
  checker.on_formed(4, ProcessId(3), s2, 2);
  const auto violations = checker.check_order();
  bool partial = false;
  for (const auto& v : violations) partial |= (v.kind == "order-partial");
  EXPECT_TRUE(partial);
}

TEST(Checker, AttemptedButNeverFormedSessionsDoNotEnterTheOrder) {
  ConsistencyChecker checker(kCore);
  const Session ghost = session({0, 1, 2}, 1);
  checker.on_attempt(1, ProcessId(0), ghost);  // nobody forms it
  const Session s2 = session({0, 1, 2, 3}, 2);
  checker.on_attempt(3, ProcessId(0), s2);
  checker.on_formed(4, ProcessId(0), s2, 2);
  EXPECT_TRUE(checker.check_order().empty());
  EXPECT_EQ(checker.formed_session_count(), 2u);  // F0 + s2
}

TEST(Checker, PrimaryUptimeMergesIntervals) {
  ConsistencyChecker checker(kCore);
  checker.on_formed(100, ProcessId(0), session({0, 1, 2}, 1), 2);
  checker.on_formed(150, ProcessId(1), session({0, 1, 2}, 1), 2);
  checker.on_primary_lost(300, ProcessId(0));
  checker.on_primary_lost(400, ProcessId(1));
  // Union of [100,300) and [150,400) = [100,400) = 300.
  EXPECT_EQ(checker.primary_uptime(1000), 300u);
  // Horizon clamps open intervals and spans.
  EXPECT_EQ(checker.primary_uptime(200), 100u);
}

TEST(Checker, OpenIntervalExtendsToHorizon) {
  ConsistencyChecker checker(kCore);
  checker.on_formed(100, ProcessId(0), session({0, 1, 2}, 1), 2);
  EXPECT_EQ(checker.primary_uptime(500), 400u);
}

TEST(Checker, SessionLiveAtRespectsIntervalBounds) {
  ConsistencyChecker checker(kCore);
  const Session s = session({0, 1, 2}, 1);
  checker.on_formed(100, ProcessId(0), s, 2);
  checker.on_primary_lost(200, ProcessId(0));
  EXPECT_FALSE(checker.session_live_at(s, 99));
  EXPECT_TRUE(checker.session_live_at(s, 100));
  EXPECT_TRUE(checker.session_live_at(s, 199));
  EXPECT_FALSE(checker.session_live_at(s, 200));
}

TEST(Checker, CountsRejectionsAndBlocked) {
  ConsistencyChecker checker(kCore);
  const View view{ViewId(1), ProcessSet::of({0, 1})};
  checker.on_session_rejected(1, ProcessId(0), view, "no majority");
  checker.on_session_rejected(2, ProcessId(0), view, "blocked: waiting");
  EXPECT_EQ(checker.rejected_sessions(), 2u);
  EXPECT_EQ(checker.blocked_sessions(), 1u);
}

TEST(Checker, RoundsSummaryTracksFormEvents) {
  ConsistencyChecker checker(kCore);
  checker.on_formed(1, ProcessId(0), session({0, 1, 2}, 1), 2);
  checker.on_formed(2, ProcessId(1), session({0, 1, 2}, 1), 4);
  EXPECT_DOUBLE_EQ(checker.rounds_per_form().mean(), 3.0);
}

TEST(Checker, LivePrimariesListsOpenIntervals) {
  ConsistencyChecker checker(kCore);
  const Session s = session({0, 1, 2}, 1);
  checker.on_formed(1, ProcessId(0), s, 2);
  checker.on_formed(1, ProcessId(1), s, 2);
  checker.on_primary_lost(5, ProcessId(1));
  const auto live = checker.live_primaries();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].first, ProcessId(0));
  EXPECT_EQ(live[0].second, s);
}

TEST(Checker, WithoutSeedingThereIsNoF0) {
  ConsistencyChecker checker(kCore, /*seed_initial=*/false);
  EXPECT_EQ(checker.formed_session_count(), 0u);
}

}  // namespace
}  // namespace dynvote
