// Property tests: the network's compact-slot routing must make sparse
// high raw ids behave exactly like dense ones.
//
// Network semantics depend only on registration order and on ProcessId
// *ordering*, never on raw id magnitude — so an order-preserving
// bijection of the id space must leave every observable (deliveries,
// drops, FIFO tails, components, virtual time) byte-identical. The
// sparse id set below deliberately straddles every representation
// boundary: the slot_direct_/slot_big_ split at 4096 and the
// ProcessSet inline/ext/huge tiers at 256 and 2^20. This guards the
// bug class PR 3 fixed for loopback (tri_index computed from raw ids
// indexing one past the pair tables) at the scale where raw-id-sized
// tables would be quadratically wrong.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"
#include "util/ensure.hpp"

namespace dynvote::sim {
namespace {

class TestPayload final : public MessagePayload {
 public:
  explicit TestPayload(std::string tag, std::size_t size = 8)
      : tag_(std::move(tag)), size_(size) {}
  [[nodiscard]] std::string type_name() const override { return tag_; }
  [[nodiscard]] std::size_t encoded_size() const override { return size_; }

 private:
  std::string tag_;
  std::size_t size_;
};

class RecordingNode : public Node {
 public:
  using Node::Node;
  using Node::broadcast;
  using Node::send;

  std::vector<std::pair<ProcessId, std::string>> received;

 protected:
  void on_view(const View&) override {}
  void on_message(ProcessId from, const PayloadPtr& payload) override {
    received.emplace_back(from, payload->type_name());
  }
};

/// Everything observable about one scripted execution, with process
/// identities reduced to registration indices so runs over different id
/// spaces compare directly.
struct Observation {
  // received[i] = sequence of (sender index, tag) at process index i.
  std::vector<std::vector<std::pair<std::size_t, std::string>>> received;
  std::vector<std::vector<std::size_t>> components;  // final live components
  std::vector<std::optional<SimTime>> sampled_tails;
  NetworkStats stats;
  SimTime final_time = 0;

  bool operator==(const Observation& other) const {
    return received == other.received && components == other.components &&
           sampled_tails == other.sampled_tails &&
           stats.messages_sent == other.stats.messages_sent &&
           stats.messages_delivered == other.stats.messages_delivered &&
           stats.messages_dropped == other.stats.messages_dropped &&
           stats.messages_unroutable == other.stats.messages_unroutable &&
           stats.messages_lost_in_flight ==
               other.stats.messages_lost_in_flight &&
           stats.bytes_sent == other.stats.bytes_sent &&
           final_time == other.final_time;
  }
};

/// Runs one fixed fault-and-traffic script over the given id space
/// (ids must be strictly increasing so registration order matches id
/// order in both runs) and returns everything observable.
Observation run_script(const std::vector<std::uint32_t>& raw_ids) {
  const std::size_t n = raw_ids.size();
  Simulator sim{SimulatorOptions{.seed = 4242, .latency = {}}};
  std::vector<RecordingNode*> nodes;
  std::map<ProcessId, std::size_t> index_of;
  ProcessSet everyone;
  for (std::size_t i = 0; i < n; ++i) {
    const ProcessId p{raw_ids[i]};
    auto node = std::make_unique<RecordingNode>(sim, p);
    nodes.push_back(node.get());
    sim.add_node(std::move(node));
    index_of[p] = i;
    everyone.insert(p);
  }
  sim.merge_all();
  for (auto* node : nodes) {
    node->deliver_view(View{ViewId(1), everyone});
  }
  auto id = [&](std::size_t i) { return ProcessId{raw_ids[i]}; };
  auto group = [&](std::initializer_list<std::size_t> indices) {
    ProcessSet out;
    for (std::size_t i : indices) out.insert(id(i));
    return out;
  };
  auto payload = [](std::string tag) {
    return std::make_shared<TestPayload>(std::move(tag));
  };

  Observation obs;

  // Phase A: ring traffic plus a loopback from the largest id (the
  // historical tri_index overflow victim).
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i]->send(id((i + 1) % n), payload("ring" + std::to_string(i)));
  }
  nodes[n - 1]->send(id(n - 1), payload("self"));
  sim.run_to_quiescence();

  // Phase B: pile up a FIFO tail, partition, observe which tails the
  // epoch bumps cleared, and route traffic inside each side.
  for (int i = 0; i < 20; ++i) {
    nodes[0]->send(id(1), payload("pile" + std::to_string(i)));
  }
  obs.sampled_tails.push_back(sim.network().fifo_tail(id(0), id(1)));
  sim.set_components({group({0, 1, 2}), group({3, 4, 5})});
  obs.sampled_tails.push_back(sim.network().fifo_tail(id(0), id(1)));
  obs.sampled_tails.push_back(sim.network().fifo_tail(id(0), id(3)));
  nodes[0]->send(id(3), payload("across"));  // unroutable
  nodes[3]->send(id(4), payload("inside"));
  sim.run_to_quiescence();

  // Phase C: in-flight loss across a cut, then a heal that must not
  // resurrect it.
  sim.merge_all();
  nodes[1]->send(id(4), payload("doomed"));
  sim.set_components({group({0, 1, 2}), group({3, 4, 5})});
  sim.merge_all();
  sim.run_to_quiescence();

  // Phase D: crash/recover with sparse ids.
  sim.crash(id(2));
  nodes[1]->send(id(2), payload("to-crashed"));
  sim.run_to_quiescence();
  sim.recover(id(2));
  obs.sampled_tails.push_back(sim.network().fifo_tail(id(1), id(2)));
  sim.merge_all();
  nodes[1]->send(id(2), payload("after-recovery"));
  sim.run_to_quiescence();

  // Reduce everything to indices.
  obs.received.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& [from, tag] : nodes[i]->received) {
      obs.received[i].emplace_back(index_of.at(from), tag);
    }
  }
  for (const ProcessSet& component : sim.network().live_components()) {
    std::vector<std::size_t> indices;
    for (ProcessId p : component) indices.push_back(index_of.at(p));
    obs.components.push_back(std::move(indices));
  }
  obs.stats = sim.network().stats();
  obs.final_time = sim.now();
  return obs;
}

// Strictly increasing, straddling the direct-lookup/hash-map split at
// 4096 and the ProcessSet inline (<256) / ext (<2^20) / huge tiers.
const std::vector<std::uint32_t> kSparseIds = {
    3, 255, 4095, 4096, 70001, (std::uint32_t{1} << 20) + 7};
const std::vector<std::uint32_t> kDenseIds = {0, 1, 2, 3, 4, 5};

TEST(NetworkSparseIds, SparseAndDenseIdSpacesObserveIdenticalExecutions) {
  const Observation dense = run_script(kDenseIds);
  const Observation sparse = run_script(kSparseIds);
  EXPECT_EQ(dense.received, sparse.received);
  EXPECT_EQ(dense.components, sparse.components);
  EXPECT_EQ(dense.sampled_tails, sparse.sampled_tails);
  EXPECT_EQ(dense.final_time, sparse.final_time);
  EXPECT_EQ(dense.stats.messages_delivered, sparse.stats.messages_delivered);
  EXPECT_EQ(dense.stats.messages_unroutable, sparse.stats.messages_unroutable);
  EXPECT_EQ(dense.stats.messages_lost_in_flight,
            sparse.stats.messages_lost_in_flight);
  EXPECT_TRUE(dense == sparse);
}

TEST(NetworkSparseIds, ScriptExercisesEveryDropAndDeliveryPath) {
  // Guard against the comparison above passing vacuously: the script
  // must actually produce deliveries, unroutable drops, in-flight
  // losses, and both a kept and a cleared FIFO tail.
  const Observation obs = run_script(kSparseIds);
  EXPECT_GT(obs.stats.messages_delivered, 0u);
  EXPECT_GT(obs.stats.messages_unroutable, 0u);
  EXPECT_GT(obs.stats.messages_lost_in_flight, 0u);
  ASSERT_EQ(obs.sampled_tails.size(), 4u);
  EXPECT_TRUE(obs.sampled_tails[0].has_value());  // tail piled up on 0->1
  // 0 and 1 stayed on the same side of the cut, so their tail survives;
  // the severed 0-3 pair and the crashed 2's links must not keep one.
  EXPECT_TRUE(obs.sampled_tails[1].has_value());
  EXPECT_FALSE(obs.sampled_tails[2].has_value());
  EXPECT_FALSE(obs.sampled_tails[3].has_value());
}

TEST(NetworkSparseIds, LoopbackFromTheLargestSparseIdDeliversToSelf) {
  // The PR-3 loopback regression at sparse scale: tri_index(s, s) for
  // the largest slot indexes one past the pair tables, so a self-send
  // must never consult them — now with a raw id far past the dense
  // limit.
  Simulator sim{SimulatorOptions{.seed = 7, .latency = {}}};
  const ProcessId big{(std::uint32_t{1} << 20) + 999};
  const ProcessId small{17};
  auto* small_node = new RecordingNode(sim, small);
  auto* big_node = new RecordingNode(sim, big);
  sim.add_node(std::unique_ptr<Node>(small_node));
  sim.add_node(std::unique_ptr<Node>(big_node));
  sim.merge_all();
  ProcessSet everyone;
  everyone.insert(small);
  everyone.insert(big);
  small_node->deliver_view(View{ViewId(1), everyone});
  big_node->deliver_view(View{ViewId(1), everyone});
  big_node->send(big, std::make_shared<TestPayload>("self"));
  sim.run_to_quiescence();
  ASSERT_EQ(big_node->received.size(), 1u);
  EXPECT_EQ(big_node->received[0].first, big);
}

TEST(NetworkSparseIds, PairStateSurvivesLaterSparseRegistrations) {
  // add_process must only ever append pair entries: an epoch captured
  // by an in-flight message, and a FIFO tail, must survive a later
  // registration that grows the tables.
  Simulator sim{SimulatorOptions{.seed = 11, .latency = {}}};
  const ProcessId a{5000};
  const ProcessId b{60000};
  auto* na = new RecordingNode(sim, a);
  auto* nb = new RecordingNode(sim, b);
  sim.add_node(std::unique_ptr<Node>(na));
  sim.add_node(std::unique_ptr<Node>(nb));
  sim.merge_all();
  ProcessSet ab;
  ab.insert(a);
  ab.insert(b);
  na->deliver_view(View{ViewId(1), ab});
  nb->deliver_view(View{ViewId(1), ab});
  na->send(b, std::make_shared<TestPayload>("in-flight"));
  const auto tail_before = sim.network().fifo_tail(a, b);
  ASSERT_TRUE(tail_before.has_value());

  // Grow the tables mid-flight.
  const ProcessId late{700000};
  auto* nl = new RecordingNode(sim, late);
  sim.add_node(std::unique_ptr<Node>(nl));
  EXPECT_EQ(sim.network().fifo_tail(a, b), tail_before);

  sim.run_to_quiescence();
  ASSERT_EQ(nb->received.size(), 1u);
  EXPECT_EQ(nb->received[0].second, "in-flight");
}

TEST(NetworkSparseIds, FifoTailForUnknownOrSelfPairsIsEmpty) {
  Simulator sim{SimulatorOptions{.seed = 13, .latency = {}}};
  const ProcessId a{123456};
  auto* na = new RecordingNode(sim, a);
  sim.add_node(std::unique_ptr<Node>(na));
  EXPECT_FALSE(sim.network().fifo_tail(a, ProcessId{999999}).has_value());
  EXPECT_FALSE(sim.network().fifo_tail(ProcessId{999999}, a).has_value());
  EXPECT_FALSE(sim.network().fifo_tail(a, a).has_value());
  EXPECT_FALSE(sim.network().alive(ProcessId{999999}));
  EXPECT_FALSE(sim.network().connected(a, ProcessId{999999}));
}

}  // namespace
}  // namespace dynvote::sim
