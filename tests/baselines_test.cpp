// Integration tests for the six comparison baselines.
#include <gtest/gtest.h>

#include "dv/basic_protocol.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"

namespace dynvote {
namespace {

ClusterOptions options_for(ProtocolKind kind, std::uint32_t n = 5,
                           std::uint64_t seed = 41) {
  ClusterOptions options;
  options.kind = kind;
  options.n = n;
  options.sim.seed = seed;
  return options;
}

// ---- Static majority --------------------------------------------------------

TEST(StaticMajority, MajorityComponentIsPrimary) {
  Cluster cluster(options_for(ProtocolKind::kStaticMajority));
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
  EXPECT_FALSE(cluster.protocol(ProcessId(3)).is_primary());
  EXPECT_TRUE(cluster.checker().check_basic().empty());
}

TEST(StaticMajority, CannotShrinkBelowMajorityUnlikeDynamic) {
  // The defining availability gap: {0,1} is a legal dynamic successor of
  // {0,1,2} but is never a static majority of the 5-process core.
  Cluster cluster(options_for(ProtocolKind::kStaticMajority));
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2}),
                     ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_FALSE(cluster.live_primary().has_value());

  Cluster dynamic(options_for(ProtocolKind::kBasic));
  dynamic.start();
  dynamic.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  dynamic.settle();
  dynamic.partition({ProcessSet::of({0, 1}), ProcessSet::of({2}),
                     ProcessSet::of({3, 4})});
  dynamic.settle();
  ASSERT_TRUE(dynamic.live_primary().has_value());
  EXPECT_EQ(dynamic.live_primary()->members, ProcessSet::of({0, 1}));
}

TEST(StaticMajority, ZeroCommunicationRounds) {
  Cluster cluster(options_for(ProtocolKind::kStaticMajority));
  cluster.start();
  EXPECT_EQ(cluster.sim().network().stats().messages_sent, 0u);
  EXPECT_DOUBLE_EQ(cluster.checker().rounds_per_form().max(), 0.0);
}

TEST(StaticMajority, RecoversInstantlyWhenMajorityReturns) {
  Cluster cluster(options_for(ProtocolKind::kStaticMajority));
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3}),
                     ProcessSet::of({4})});
  cluster.settle();
  EXPECT_FALSE(cluster.live_primary().has_value());
  cluster.merge();
  cluster.settle();
  EXPECT_TRUE(cluster.live_primary().has_value());
  EXPECT_TRUE(cluster.checker().check_basic().empty());
}

// ---- Blocking dynamic voting ------------------------------------------------

// Shared setup: a failed formation attempt S = ({0..4}, 1) recorded by
// every process (all attempt, nobody forms).
void fail_first_formation(Cluster& cluster, FaultInjector& faults) {
  for (std::uint32_t p = 0; p < 5; ++p) {
    faults.drop_to(ProcessId(p), "dv.attempt", 4);
  }
  cluster.merge();
  cluster.settle();
  faults.clear();
}

TEST(BlockingDynamic, MajorityOfAttemptersIsNotEnough) {
  Cluster cluster(options_for(ProtocolKind::kBlockingDynamic));
  FaultInjector faults(cluster.sim().network());
  fail_first_formation(cluster, faults);
  EXPECT_FALSE(cluster.live_primary().has_value());

  // A majority of the attempters reconnects: ours would proceed; the
  // blocking protocol refuses until ALL five attempters are present.
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_FALSE(cluster.live_primary().has_value());
  EXPECT_GT(cluster.checker().blocked_sessions(), 0u);

  // Same failure, our protocol: the majority continues.
  Cluster ours(options_for(ProtocolKind::kBasic));
  FaultInjector ours_faults(ours.sim().network());
  fail_first_formation(ours, ours_faults);
  ours.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  ours.settle();
  ASSERT_TRUE(ours.live_primary().has_value());
  EXPECT_EQ(ours.live_primary()->members, ProcessSet::of({0, 1, 2}));
}

TEST(BlockingDynamic, ProceedsOnceAllAttemptersReturn) {
  Cluster cluster(options_for(ProtocolKind::kBlockingDynamic));
  FaultInjector faults(cluster.sim().network());
  fail_first_formation(cluster, faults);
  // The topology never changed (everyone stayed connected through the
  // message loss), so prod the membership service into a fresh view.
  cluster.oracle().inject_view(ProcessSet::range(5));
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value());
  EXPECT_EQ(cluster.live_primary()->members, ProcessSet::range(5));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(BlockingDynamic, OneCrashedAttemperBlocksEveryoneForever) {
  // The paper's criticism: one process that disappears during the
  // protocol stalls all the others, even though four of five are up.
  Cluster cluster(options_for(ProtocolKind::kBlockingDynamic));
  FaultInjector faults(cluster.sim().network());
  fail_first_formation(cluster, faults);
  cluster.crash(ProcessId(4));
  cluster.settle();
  cluster.merge();
  cluster.settle();
  EXPECT_FALSE(cluster.live_primary().has_value());
  EXPECT_GT(cluster.checker().blocked_sessions(), 0u);
}

TEST(BlockingDynamic, StaysConsistentUnderTheTypicalScenario) {
  Cluster cluster(options_for(ProtocolKind::kBlockingDynamic));
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

// ---- Hybrid (Jajodia-Mutchler) ----------------------------------------------

TEST(HybridJm, DynamicAboveThreeStaticAtThree) {
  Cluster cluster(options_for(ProtocolKind::kHybridJm));
  cluster.start();
  // 5 -> 3: plain dynamic voting.
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value());
  EXPECT_EQ(cluster.live_primary()->members, ProcessSet::of({0, 1, 2}));
  // 3 -> 2: static majority of the 3-member floor still works...
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2}),
                     ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
  // ...but 2 -> 1 can never happen: the floor stays {0,1,2} and one
  // process is not a majority of it.
  cluster.partition({ProcessSet::of({0}), ProcessSet::of({1}),
                     ProcessSet::of({2}), ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_FALSE(cluster.live_primary().has_value());
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(HybridJm, SingletonNeverFormsButDynamicSingletonDoes) {
  // Ours (Min_Quorum = 1) lets the chain shrink to one process; the
  // hybrid never does — the paper notes neither dominates the other.
  Cluster hybrid(options_for(ProtocolKind::kHybridJm));
  Cluster ours(options_for(ProtocolKind::kBasic));
  for (Cluster* cluster : {&hybrid, &ours}) {
    cluster->start();
    cluster->partition({ProcessSet::of({2, 3, 4}), ProcessSet::of({0, 1})});
    cluster->settle();
    cluster->partition({ProcessSet::of({3, 4}), ProcessSet::of({2}),
                        ProcessSet::of({0, 1})});
    cluster->settle();
    cluster->partition({ProcessSet::of({4}), ProcessSet::of({3}),
                        ProcessSet::of({2}), ProcessSet::of({0, 1})});
    cluster->settle();
  }
  EXPECT_FALSE(hybrid.protocol(ProcessId(4)).is_primary());
  EXPECT_TRUE(ours.protocol(ProcessId(4)).is_primary());
  EXPECT_TRUE(hybrid.checker().check_all().empty());
  EXPECT_TRUE(ours.checker().check_all().empty());
}

TEST(HybridJm, RecordedQuorumNeverShrinksBelowThree) {
  Cluster cluster(options_for(ProtocolKind::kHybridJm));
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  cluster.partition({ProcessSet::of({1, 2}), ProcessSet::of({0}),
                     ProcessSet::of({3, 4})});
  cluster.settle();
  ASSERT_TRUE(cluster.protocol(ProcessId(1)).is_primary());
  const auto& state =
      dynamic_cast<const BasicDvProtocol&>(cluster.protocol(ProcessId(1)))
          .state();
  // Last_Primary records the 3-member floor, not the 2-member component.
  EXPECT_EQ(state.last_primary->members, ProcessSet::of({0, 1, 2}));
}

TEST(HybridJm, HybridWinsWhereOursWithMinQuorum3Blocks) {
  // The reverse direction of "neither dominates": from {0,1,2} the
  // hybrid allows {1,2} (static majority of 3) while ours with
  // Min_Quorum = 3 refuses any 2-member group.
  ClusterOptions ours_options = options_for(ProtocolKind::kBasic);
  ours_options.config.min_quorum = 3;
  Cluster ours(ours_options);
  Cluster hybrid(options_for(ProtocolKind::kHybridJm));
  for (Cluster* cluster : {&ours, &hybrid}) {
    cluster->start();
    cluster->partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
    cluster->settle();
    cluster->partition({ProcessSet::of({1, 2}), ProcessSet::of({0}),
                        ProcessSet::of({3, 4})});
    cluster->settle();
  }
  EXPECT_TRUE(hybrid.protocol(ProcessId(1)).is_primary());
  EXPECT_FALSE(ours.protocol(ProcessId(1)).is_primary());
}

// ---- Three-phase recovery ---------------------------------------------------

TEST(ThreePhaseRecovery, FormsTheSameQuorumsAsOurs) {
  Cluster cluster(options_for(ProtocolKind::kThreePhaseRecovery));
  cluster.start();
  ASSERT_TRUE(cluster.live_primary().has_value());
  EXPECT_EQ(cluster.live_primary()->members, ProcessSet::range(5));
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value());
  EXPECT_EQ(cluster.live_primary()->members, ProcessSet::of({0, 1, 2}));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(ThreePhaseRecovery, PaysFiveRoundsWhereOursPaysTwo) {
  Cluster slow(options_for(ProtocolKind::kThreePhaseRecovery));
  slow.start();
  Cluster fast(options_for(ProtocolKind::kBasic));
  fast.start();
  EXPECT_DOUBLE_EQ(slow.checker().rounds_per_form().mean(), 5.0);
  EXPECT_DOUBLE_EQ(fast.checker().rounds_per_form().mean(), 2.0);
  EXPECT_GT(slow.sim().network().stats().messages_sent,
            2 * fast.sim().network().stats().messages_sent);
}

TEST(ThreePhaseRecovery, SurvivesTheTypicalScenario) {
  Cluster cluster(options_for(ProtocolKind::kThreePhaseRecovery));
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1}));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

// ---- Naive / last-attempt (supplementary to the paper scenarios) -----------

TEST(NaiveDynamic, ConsistentWhenNoFailuresHitTheProtocol) {
  Cluster cluster(options_for(ProtocolKind::kNaiveDynamic));
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  cluster.merge();
  cluster.settle();
  EXPECT_TRUE(cluster.live_primary().has_value());
  EXPECT_TRUE(cluster.checker().check_basic().empty());
}

TEST(NaiveDynamic, SingleRoundOnly) {
  Cluster cluster(options_for(ProtocolKind::kNaiveDynamic));
  cluster.start();
  EXPECT_DOUBLE_EQ(cluster.checker().rounds_per_form().max(), 1.0);
}

TEST(LastAttemptOnly, KeepsExactlyOneAmbiguousSession) {
  Cluster cluster(options_for(ProtocolKind::kLastAttemptOnly));
  FaultInjector faults(cluster.sim().network());
  // Two consecutive failed attempts with different memberships.
  faults.drop_to(ProcessId(0), "dv.attempt");
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  cluster.partition({ProcessSet::of({0, 1, 3}), ProcessSet::of({2}),
                     ProcessSet::of({4})});
  cluster.settle();
  faults.clear();
  const auto& state =
      dynamic_cast<const BasicDvProtocol&>(cluster.protocol(ProcessId(0)))
          .state();
  EXPECT_LE(state.ambiguous.size(), 1u);
}

// ---- Factory / facade -------------------------------------------------------

TEST(ProtocolFactory, BuildsEveryKind) {
  for (ProtocolKind kind : all_protocol_kinds()) {
    Cluster cluster(options_for(kind));
    cluster.start();
    EXPECT_TRUE(cluster.live_primary().has_value()) << to_string(kind);
  }
}

TEST(ProtocolFactory, ConsistencyFlagsMatchDesign) {
  EXPECT_TRUE(is_consistent_protocol(ProtocolKind::kBasic));
  EXPECT_TRUE(is_consistent_protocol(ProtocolKind::kOptimized));
  EXPECT_TRUE(is_consistent_protocol(ProtocolKind::kBlockingDynamic));
  EXPECT_TRUE(is_consistent_protocol(ProtocolKind::kHybridJm));
  EXPECT_TRUE(is_consistent_protocol(ProtocolKind::kThreePhaseRecovery));
  EXPECT_TRUE(is_consistent_protocol(ProtocolKind::kStaticMajority));
  EXPECT_FALSE(is_consistent_protocol(ProtocolKind::kNaiveDynamic));
  EXPECT_FALSE(is_consistent_protocol(ProtocolKind::kLastAttemptOnly));
}

TEST(Service, ReportsPrimaryStateAndProcess) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  auto service = cluster.service(ProcessId(1));
  EXPECT_TRUE(service.in_primary());
  EXPECT_EQ(service.process(), ProcessId(1));
  ASSERT_TRUE(service.primary().has_value());
  EXPECT_EQ(service.primary()->members, ProcessSet::range(5));
  cluster.partition({ProcessSet::of({0, 2, 3, 4}), ProcessSet::of({1})});
  cluster.settle();
  EXPECT_FALSE(cluster.service(ProcessId(1)).in_primary());
}

}  // namespace
}  // namespace dynvote
