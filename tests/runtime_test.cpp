// Tests for the real-thread runtime backend (src/runtime/): the SPSC
// ring and timer wheel in isolation (including cross-thread stress cases
// meant to run under TSan — tools/run_experiments.sh wires the Runtime*
// prefixes into its TSan pass), the fleet lifecycle, and the
// DES-as-oracle cross-check that pins both backends to identical
// outcome digests seed by seed.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/crosscheck.hpp"
#include "runtime/fleet.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/thread_transport.hpp"
#include "runtime/timer_wheel.hpp"
#include "util/rng.hpp"

namespace dynvote::runtime {
namespace {

// ---------------------------------------------------------------- SPSC ring

TEST(RuntimeSpsc, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(256).capacity(), 256u);
  EXPECT_EQ(SpscQueue<int>(257).capacity(), 512u);
}

TEST(RuntimeSpsc, FifoAcrossManyWraps) {
  SpscQueue<std::uint64_t> queue(4);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  // Irregular push/pop bursts force every wrap alignment.
  Rng rng(7);
  for (int round = 0; round < 10000; ++round) {
    std::uint64_t pushes = rng.next_below(5);
    while (pushes-- > 0 && queue.try_push(std::uint64_t(next_push))) {
      ++next_push;
    }
    std::uint64_t pops = rng.next_below(5);
    std::uint64_t out = 0;
    while (pops-- > 0 && queue.try_pop(out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  std::uint64_t out = 0;
  while (queue.try_pop(out)) {
    ASSERT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_TRUE(queue.empty());
}

TEST(RuntimeSpsc, FullRingRejectsWithoutConsumingTheValue) {
  SpscQueue<std::unique_ptr<int>> queue(2);
  ASSERT_TRUE(queue.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(queue.try_push(std::make_unique<int>(2)));
  auto retained = std::make_unique<int>(3);
  ASSERT_FALSE(queue.try_push(std::move(retained)));
  // A failed push must leave the value intact for the caller's retry.
  ASSERT_NE(retained, nullptr);
  EXPECT_EQ(*retained, 3);
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(*out, 1);
  ASSERT_TRUE(queue.try_push(std::move(retained)));
  EXPECT_EQ(retained, nullptr);
}

// The cross-thread contract, exactly as the transport uses it: one
// producer spinning on a small ring, one consumer draining. Run under
// TSan this exercises the acquire/release protocol; in any build the
// checksum catches lost, duplicated or reordered items.
TEST(RuntimeSpsc, TwoThreadStressKeepsOrderAndCount) {
  constexpr std::uint64_t kItems = 100000;
  SpscQueue<std::uint64_t> queue(8);  // tiny ring maximizes contention
  std::atomic<bool> done{false};
  std::uint64_t received = 0;
  std::uint64_t checksum = 0;
  std::thread consumer([&] {
    std::uint64_t out = 0;
    for (;;) {
      if (queue.try_pop(out)) {
        // FIFO: items arrive exactly in push order.
        ASSERT_EQ(out, received);
        ++received;
        checksum += out * 2654435761u;
      } else if (done.load(std::memory_order_acquire)) {
        if (!queue.try_pop(out)) break;
        ASSERT_EQ(out, received);
        ++received;
        checksum += out * 2654435761u;
      } else {
        // Busy-spinning here starves the producer on shared cores (the
        // CI box can be single-core); the real transport parks instead.
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected_checksum = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    while (!queue.try_push(std::uint64_t(i))) std::this_thread::yield();
    expected_checksum += i * 2654435761u;
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(received, kItems);
  EXPECT_EQ(checksum, expected_checksum);
}

TEST(RuntimeSpsc, PopBulkKeepsFifoAcrossWrapsAndRespectsMax) {
  SpscQueue<std::uint64_t> queue(4);
  std::vector<std::uint64_t> drained;
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  Rng rng(11);
  for (int round = 0; round < 10000; ++round) {
    std::uint64_t pushes = rng.next_below(5);
    while (pushes-- > 0 && queue.try_push(std::uint64_t(next_push))) {
      ++next_push;
    }
    const std::size_t max = rng.next_below(5);
    const std::size_t before = drained.size();
    const std::size_t got = queue.pop_bulk(drained, max);
    ASSERT_LE(got, max);
    ASSERT_EQ(drained.size(), before + got);
    // Appended in FIFO order, regardless of wrap alignment.
    for (std::size_t i = before; i < drained.size(); ++i) {
      ASSERT_EQ(drained[i], next_pop);
      ++next_pop;
    }
  }
  while (queue.pop_bulk(drained, 64) > 0) {
  }
  EXPECT_EQ(drained.size(), next_push);
  for (std::uint64_t i = 0; i < next_push; ++i) ASSERT_EQ(drained[i], i);
  EXPECT_TRUE(queue.empty());
  // max = 0 is a no-op even with items queued.
  ASSERT_TRUE(queue.try_push(7u));
  EXPECT_EQ(queue.pop_bulk(drained, 0), 0u);
  EXPECT_FALSE(queue.empty());
}

// Cross-thread bulk drain, as both transports use it: the consumer pulls
// whole bursts while the producer spins on a tiny ring. Under TSan this
// exercises pop_bulk's single cursor publish; in any build the sequence
// check catches lost, duplicated or reordered items.
TEST(RuntimeSpsc, PopBulkTwoThreadStressKeepsOrderAndCount) {
  constexpr std::uint64_t kItems = 100000;
  SpscQueue<std::uint64_t> queue(8);
  std::atomic<bool> done{false};
  std::uint64_t received = 0;
  std::uint64_t checksum = 0;
  std::thread consumer([&] {
    std::vector<std::uint64_t> batch;
    for (;;) {
      batch.clear();
      if (queue.pop_bulk(batch, queue.capacity()) > 0) {
        for (const std::uint64_t item : batch) {
          ASSERT_EQ(item, received);
          ++received;
          checksum += item * 2654435761u;
        }
      } else if (done.load(std::memory_order_acquire)) {
        if (queue.pop_bulk(batch, queue.capacity()) == 0) break;
        for (const std::uint64_t item : batch) {
          ASSERT_EQ(item, received);
          ++received;
          checksum += item * 2654435761u;
        }
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected_checksum = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    while (!queue.try_push(std::uint64_t(i))) std::this_thread::yield();
    expected_checksum += i * 2654435761u;
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(received, kItems);
  EXPECT_EQ(checksum, expected_checksum);
}

// -------------------------------------------------------------- timer wheel

TEST(RuntimeWheel, FiresInDeadlineOrderAcrossSlots) {
  TimerWheel wheel(/*tick_us=*/10);
  std::vector<int> fired;
  // Deliberately scheduled out of order, with deadlines that hash to
  // scattered slots.
  wheel.schedule_at(95, [&] { fired.push_back(3); });
  wheel.schedule_at(15, [&] { fired.push_back(1); });
  wheel.schedule_at(40, [&] { fired.push_back(2); });
  EXPECT_EQ(wheel.pending(), 3u);
  EXPECT_EQ(wheel.advance(14), 0u);
  EXPECT_EQ(wheel.advance(95), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(RuntimeWheel, SameDeadlineFiresInScheduleOrder) {
  TimerWheel wheel(10);
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    wheel.schedule_at(100, [&fired, i] { fired.push_back(i); });
  }
  EXPECT_EQ(wheel.advance(100), 5u);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RuntimeWheel, CancelledTimerNeverFires) {
  TimerWheel wheel(10);
  bool fired = false;
  const sim::TimerToken token = wheel.schedule_at(50, [&] { fired = true; });
  EXPECT_TRUE(wheel.cancel(token));
  EXPECT_FALSE(wheel.cancel(token));  // already gone
  EXPECT_EQ(wheel.advance(1000), 0u);
  EXPECT_FALSE(fired);
}

TEST(RuntimeWheel, DistantDeadlineSurvivesWholeRevolutions) {
  // tick 10 and 256 slots: one revolution is 2560us. A timer 3+
  // revolutions out must stay put while the cursor laps its slot.
  TimerWheel wheel(10);
  bool fired = false;
  wheel.schedule_at(8000, [&] { fired = true; });
  for (SimTime t = 100; t <= 7900; t += 100) {
    ASSERT_EQ(wheel.advance(t), 0u) << "fired early at t=" << t;
  }
  EXPECT_EQ(wheel.next_deadline(), std::optional<SimTime>(8000));
  EXPECT_EQ(wheel.advance(8000), 1u);
  EXPECT_TRUE(fired);
}

// Property test: the wheel agrees with a multimap reference model under
// a random schedule/cancel/advance workload.
TEST(RuntimeWheel, AgreesWithReferenceModelUnderRandomWorkload) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    TimerWheel wheel(/*tick_us=*/16);
    std::multimap<SimTime, sim::TimerToken> model;  // deadline -> token
    std::vector<std::pair<SimTime, sim::TimerToken>> fired;
    SimTime now = 0;
    for (int op = 0; op < 2000; ++op) {
      const std::uint64_t dice = rng.next_below(10);
      if (dice < 5) {  // schedule at now + [0, 5000)
        const SimTime deadline = now + rng.next_below(5000);
        const sim::TimerToken token = wheel.schedule_at(
            deadline, [&fired, deadline] { fired.emplace_back(deadline, 0); });
        model.emplace(deadline, token);
      } else if (dice < 7) {  // cancel a random pending timer
        if (!model.empty()) {
          auto it = model.begin();
          std::advance(it, static_cast<long>(rng.next_below(model.size())));
          EXPECT_TRUE(wheel.cancel(it->second));
          model.erase(it);
        }
      } else {  // advance by [0, 2000)
        now += rng.next_below(2000);
        const std::size_t before = fired.size();
        const std::size_t count = wheel.advance(now);
        // Everything due in the model must have fired, nothing else.
        std::size_t due = 0;
        while (!model.empty() && model.begin()->first <= now) {
          model.erase(model.begin());
          ++due;
        }
        ASSERT_EQ(count, due) << "seed " << seed << " now " << now;
        ASSERT_EQ(fired.size() - before, due);
        // Fired deadlines are ordered within this batch.
        for (std::size_t i = before + 1; i < fired.size(); ++i) {
          ASSERT_LE(fired[i - 1].first, fired[i].first);
        }
      }
      ASSERT_EQ(wheel.pending(), model.size());
    }
  }
}

// -------------------------------------------------------------- fleet

TEST(RuntimeFleet, FormsOnePrimaryOnStart) {
  FleetOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  RuntimeFleet fleet(options);
  fleet.start();
  const auto probes = fleet.probe();
  ASSERT_EQ(probes.size(), 5u);
  for (const ProcessProbe& probe : probes) {
    EXPECT_TRUE(probe.alive);
    EXPECT_TRUE(probe.is_primary) << probe.id.value();
    EXPECT_EQ(probe.formed_count, 1u);
  }
  EXPECT_EQ(RuntimeFleet::distinct_primaries(probes), 1u);
  fleet.stop();
}

TEST(RuntimeFleet, MajoritySideKeepsPrimaryThroughPartition) {
  FleetOptions options;
  options.kind = ProtocolKind::kBasic;
  options.n = 5;
  RuntimeFleet fleet(options);
  fleet.start();

  ProcessSet majority;
  ProcessSet minority;
  for (std::uint32_t i = 0; i < 3; ++i) majority.insert(ProcessId(i));
  for (std::uint32_t i = 3; i < 5; ++i) minority.insert(ProcessId(i));
  fleet.partition({majority, minority});

  auto probes = fleet.probe();
  EXPECT_EQ(RuntimeFleet::distinct_primaries(probes), 1u);
  for (const ProcessProbe& probe : probes) {
    const bool in_majority = majority.contains(probe.id);
    EXPECT_EQ(probe.is_primary, in_majority) << probe.id.value();
  }

  fleet.merge();
  probes = fleet.probe();
  EXPECT_EQ(RuntimeFleet::distinct_primaries(probes), 1u);
  for (const ProcessProbe& probe : probes) {
    EXPECT_TRUE(probe.is_primary) << probe.id.value();
  }
  fleet.stop();
}

TEST(RuntimeFleet, CrashRecoverChurnPreservesC1) {
  FleetOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 4;
  RuntimeFleet fleet(options);
  fleet.start();
  for (int round = 0; round < 3; ++round) {
    fleet.crash(ProcessId(0));
    EXPECT_LE(RuntimeFleet::distinct_primaries(fleet.probe()), 1u);
    fleet.crash(ProcessId(1));
    EXPECT_LE(RuntimeFleet::distinct_primaries(fleet.probe()), 1u);
    fleet.recover(ProcessId(0));
    EXPECT_LE(RuntimeFleet::distinct_primaries(fleet.probe()), 1u);
    fleet.recover(ProcessId(1));
    fleet.merge();
    const auto probes = fleet.probe();
    EXPECT_EQ(RuntimeFleet::distinct_primaries(probes), 1u);
    for (const ProcessProbe& probe : probes) {
      EXPECT_TRUE(probe.is_primary) << probe.id.value();
    }
  }
  fleet.stop();
}

TEST(RuntimeFleet, StopIsIdempotentAndSummariesAreStable) {
  FleetOptions options;
  options.n = 3;
  RuntimeFleet fleet(options);
  fleet.start();
  fleet.stop();
  fleet.stop();
  const std::string summary = fleet.outcome_summary();
  EXPECT_FALSE(summary.empty());
  EXPECT_EQ(fleet.outcome_digest(), fnv1a64(summary));
}

// -------------------------------------------------------------- cross-check

// The tentpole acceptance gate: the same seeded scenario, run through
// the DES, through one thread per process, and through the M:N pool at
// every requested worker count, must produce identical outcome
// transcripts (views installed, sessions formed with numbers / members
// / rounds, final states) — on every one of eight seeds, for both
// paper protocols.
TEST(RuntimeCrossCheck, DigestsMatchOnEightSeeds) {
  for (const ProtocolKind kind :
       {ProtocolKind::kBasic, ProtocolKind::kOptimized}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const CrossCheckResult result = run_scenario(kind, /*n=*/5, seed);
      EXPECT_TRUE(result.digests_equal)
          << to_string(kind) << " seed " << seed << "\n--- DES ---\n"
          << result.sim_summary << "--- runtime ---\n"
          << result.runtime_summary << "--- pool (divergent) ---\n"
          << result.pool_divergent_summary;
      EXPECT_TRUE(result.c1_clean) << to_string(kind) << " seed " << seed;
      // The default harness runs the pool at W ∈ {1, 2, 4}; every run
      // must land on the DES digest exactly.
      ASSERT_EQ(result.pool.size(), 3u);
      for (const PoolCheck& check : result.pool) {
        EXPECT_EQ(check.digest, result.sim_digest)
            << to_string(kind) << " seed " << seed << " W=" << check.workers;
      }
    }
  }
}

TEST(RuntimeCrossCheck, ScenarioGenerationIsDeterministic) {
  const auto a = make_scenario(5, 42, 10);
  const auto b = make_scenario(5, 42, 10);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_string(), b[i].to_string());
  }
  // A different seed produces a different script (overwhelmingly).
  const auto c = make_scenario(5, 43, 10);
  std::string sa;
  std::string sc;
  for (const auto& step : a) sa += step.to_string() + ";";
  for (const auto& step : c) sc += step.to_string() + ";";
  EXPECT_NE(sa, sc);
}

TEST(RuntimeCrossCheck, RejectsTimingDependentKinds) {
  EXPECT_THROW(
      { (void)run_scenario(ProtocolKind::kCentralized, 5, 1); },
      InvariantViolation);
}

}  // namespace
}  // namespace dynvote::runtime
