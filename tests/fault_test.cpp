// Fault-injection sweeps: crashes at every point of the formation
// timeline, disk loss sweeps, view-churn storms, and codec fuzzing —
// the "does anything at all shake it loose" suite.
#include <gtest/gtest.h>

#include <tuple>

#include "dv/basic_protocol.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "util/codec.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

// ---- crash-point sweep -----------------------------------------------------

// Crash one process at a virtual-time offset inside the formation window
// (the window is ~1.5ms: views arrive around 200-800us, the two rounds
// take a few hundred more). Sweeping the offset hits every protocol
// step: before the view, mid info round, mid attempt round, after
// forming.
class CrashPointSweep
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, SimTime>> {};

TEST_P(CrashPointSweep, CrashAnywhereInFormationIsSafeAndRecoverable) {
  const auto [kind, offset] = GetParam();
  ClusterOptions options;
  options.kind = kind;
  options.n = 5;
  options.sim.seed = 90 + offset;
  Cluster cluster(options);

  cluster.merge();                      // start forming
  cluster.sim().run_until(offset);      // ...partway through
  cluster.crash(ProcessId(2));
  cluster.settle();

  // Survivors end in a sane state; after recovery and heal, one primary.
  cluster.recover(ProcessId(2));
  cluster.settle();
  cluster.merge();
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value())
      << to_string(kind) << " offset " << offset;
  EXPECT_EQ(cluster.live_primary()->members, ProcessSet::range(5));
  const auto violations = cluster.checker().check_all();
  EXPECT_TRUE(violations.empty())
      << to_string(kind) << " offset " << offset << "\n"
      << to_string(violations);
}

INSTANTIATE_TEST_SUITE_P(
    Offsets, CrashPointSweep,
    ::testing::Combine(::testing::Values(ProtocolKind::kBasic,
                                         ProtocolKind::kOptimized,
                                         ProtocolKind::kCentralized),
                       ::testing::Values(SimTime{100}, SimTime{400},
                                         SimTime{700}, SimTime{1000},
                                         SimTime{1300}, SimTime{2000})),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_t" + std::to_string(std::get<1>(info.param));
    });

// ---- disk-loss sweep ---------------------------------------------------------

class DiskLossSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DiskLossSweep, UpToAllButOneDiskLossKeepsConsistency) {
  const std::uint32_t losses = GetParam();
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = 95;
  Cluster cluster(options);
  cluster.start();
  for (std::uint32_t p = 0; p < losses; ++p) {
    cluster.sim().crash_and_destroy_disk(ProcessId(p));
  }
  cluster.settle();
  for (std::uint32_t p = 0; p < losses; ++p) cluster.recover(ProcessId(p));
  cluster.merge();
  cluster.settle();
  // With at least one intact history the full group always re-forms
  // (it is a superset of every recorded quorum).
  EXPECT_TRUE(cluster.live_primary().has_value()) << losses << " disks lost";
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

INSTANTIATE_TEST_SUITE_P(Losses, DiskLossSweep, ::testing::Values(1u, 2u, 3u, 4u));

// ---- view-churn storm ---------------------------------------------------------

TEST(ChurnStorm, RapidFireTopologyChangesNeverBreakSafety) {
  // Dozens of topology changes faster than sessions can complete: most
  // views are superseded before delivery; the protocol must neither
  // wedge nor split.
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 6;
  options.sim.seed = 96;
  Cluster cluster(options);
  Rng rng(97);
  cluster.merge();
  for (int storm = 0; storm < 60; ++storm) {
    // A random bipartition, applied after only ~50us — far less than the
    // membership detection delay, so sessions rarely finish.
    cluster.sim().advance(50);
    ProcessSet half;
    for (std::uint32_t p = 0; p < 6; ++p) {
      if (rng.next_bool(0.5)) half.insert(ProcessId(p));
    }
    if (half.empty() || half.size() == 6) continue;
    cluster.partition({half, ProcessSet::range(6).set_difference(half)});
  }
  cluster.merge();
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value());
  EXPECT_EQ(cluster.live_primary()->members, ProcessSet::range(6));
  const auto violations = cluster.checker().check_all();
  EXPECT_TRUE(violations.empty()) << to_string(violations);
}

TEST(ChurnStorm, SpuriousViewBombardmentIsHarmless) {
  // The membership oracle lies constantly: random subsets reported as
  // views while the real network stays fully connected.
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = 98;
  Cluster cluster(options);
  cluster.start();
  Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    ProcessSet lie;
    for (std::uint32_t p = 0; p < 5; ++p) {
      if (rng.next_bool(0.6)) lie.insert(ProcessId(p));
    }
    if (lie.empty()) lie.insert(ProcessId(0));
    cluster.oracle().inject_view(lie);
    cluster.sim().advance(300);
  }
  // A final truthful view settles everything.
  cluster.oracle().inject_view(ProcessSet::range(5));
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value());
  EXPECT_EQ(cluster.live_primary()->members, ProcessSet::range(5));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

// ---- codec fuzz -----------------------------------------------------------------

TEST(CodecFuzz, RandomBytesNeverCrashTheDecoders) {
  Rng rng(0xF022);
  int state_ok = 0, state_rejected = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    const std::size_t len = static_cast<std::size_t>(rng.next_below(200));
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    Decoder dec(bytes);
    try {
      (void)ProtocolState::decode(dec);
      ++state_ok;
    } catch (const CodecError&) {
      ++state_rejected;
    }
  }
  // Overwhelmingly rejected; the point is no crash / no UB either way.
  EXPECT_GT(state_rejected, 4000);
  (void)state_ok;
}

TEST(CodecFuzz, TruncationsOfValidStateAlwaysThrowCleanly) {
  auto state = ProtocolState::initial(ProcessSet::range(5), ProcessId(0));
  state.record_attempt(Session{ProcessSet::of({0, 1, 2}), 1}, ProcessId(0));
  Encoder enc;
  state.encode(enc);
  const auto& bytes = enc.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + static_cast<long>(cut));
    Decoder dec(truncated);
    EXPECT_THROW((void)ProtocolState::decode(dec), CodecError) << "cut " << cut;
  }
}

TEST(CodecFuzz, BitFlipsEitherDecodeOrThrow) {
  auto state = ProtocolState::initial(ProcessSet::range(5), ProcessId(1));
  state.record_attempt(Session{ProcessSet::of({1, 2, 3}), 1}, ProcessId(1));
  Encoder enc;
  state.encode(enc);
  Rng rng(0xB17);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> bytes = enc.bytes();
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(bytes.size()));
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    Decoder dec(bytes);
    try {
      (void)ProtocolState::decode(dec);  // may succeed with altered values
    } catch (const CodecError&) {
      // equally fine
    } catch (const InvariantViolation&) {
      // set normalization may reject, also fine
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace dynvote
