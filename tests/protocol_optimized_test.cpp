// Integration tests: the optimized protocol's learning and resolution
// rules (paper section 5, figures 2-3).
#include <gtest/gtest.h>

#include "dv/optimized_protocol.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"

namespace dynvote {
namespace {

ClusterOptions optimized_options(std::uint64_t seed = 11) {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = seed;
  return options;
}

const OptimizedDvProtocol& opt(Cluster& cluster, std::uint32_t p) {
  return dynamic_cast<const OptimizedDvProtocol&>(
      cluster.protocol(ProcessId(p)));
}

TEST(OptimizedProtocol, BehavesLikeBasicOnHappyPath) {
  Cluster cluster(optimized_options());
  cluster.start();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::range(5));
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_EQ(cluster.live_primary()->members, ProcessSet::of({0, 1, 2}));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(OptimizedProtocol, LastFormedGossipPropagatesOnForm) {
  Cluster cluster(optimized_options());
  cluster.start();
  const auto& state = opt(cluster, 0).state();
  const Session formed = *state.last_primary;
  for (std::uint32_t q = 0; q < 5; ++q) {
    EXPECT_EQ(state.last_formed.at(ProcessId(q)), formed);
  }
}

TEST(OptimizedProtocol, AdoptionWhenFormedSessionWasMissed) {
  // p2 misses the attempt round: p0, p1, p3, p4 form S but p2 holds it
  // ambiguous. On the next session, p2 learns from Last_Formed that S
  // was formed and adopts it (resolution rule 1).
  Cluster cluster(optimized_options());
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 4);
  cluster.start();
  EXPECT_FALSE(cluster.protocol(ProcessId(2)).is_primary());
  ASSERT_EQ(opt(cluster, 2).state().ambiguous.size(), 1u);
  faults.clear();

  // Any new view triggers a new session where learning happens. The new
  // session then forms, so what proves the adoption ran is the counter.
  cluster.oracle().inject_view(ProcessSet::range(5));
  cluster.settle();
  EXPECT_GE(opt(cluster, 2).gc_adoptions(), 1u);
  EXPECT_TRUE(cluster.protocol(ProcessId(2)).is_primary());
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(OptimizedProtocol, AdoptionWithoutReformingKeepsStateCorrect) {
  // Same miss, but the re-encounter happens in a view that CANNOT form a
  // quorum (Min_Quorum floor): p2 adopts the formed session yet nobody
  // becomes primary, and p2's Last_Primary is now the formed session.
  ClusterOptions options = optimized_options();
  options.config.min_quorum = 3;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 4);
  cluster.start();
  const Session formed = *opt(cluster, 0).state().last_primary;
  faults.clear();

  // {0, 2} alone: two processes < Min_Quorum 3, so the session aborts —
  // but the learning in step 2 still runs.
  cluster.partition({ProcessSet::of({0, 2}), ProcessSet::of({1, 3, 4})});
  cluster.settle();
  EXPECT_EQ(opt(cluster, 2).state().last_primary, formed);
  EXPECT_TRUE(opt(cluster, 2).state().ambiguous.empty());
  EXPECT_GE(opt(cluster, 2).gc_adoptions(), 1u);
}

TEST(OptimizedProtocol, DeletesAttemptNobodyFormed) {
  // Core {0,1,2}. In view {0,1} both members attempt S but neither forms
  // (attempt messages dropped). Re-running the view, each learns from
  // the other's Last_Formed (still F0) that S was formed by NO member —
  // resolution rule 1 deletes the record before the new attempt.
  ClusterOptions options = optimized_options();
  options.n = 3;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(0), "dv.attempt", 1);
  faults.drop_to(ProcessId(1), "dv.attempt", 1);
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2})});
  cluster.settle();
  EXPECT_FALSE(cluster.live_primary().has_value());
  EXPECT_EQ(opt(cluster, 0).state().ambiguous.size(), 1u);
  EXPECT_EQ(opt(cluster, 1).state().ambiguous.size(), 1u);
  faults.clear();

  cluster.oracle().inject_view(ProcessSet::of({0, 1}));
  cluster.settle();
  EXPECT_GE(opt(cluster, 0).gc_deletions(), 1u);
  EXPECT_GE(opt(cluster, 1).gc_deletions(), 1u);
  // The rerun session then forms normally.
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(OptimizedProtocol, SecondRuleDeletesViaNonAmbiguousPeer) {
  // p0 records an attempt S; later it meets a member q of S whose
  // Last_Primary predates S and which does not hold S ambiguous (q never
  // reached the attempt step). p0 concludes S was formed by nobody.
  ClusterOptions options = optimized_options();
  options.config.min_quorum = 3;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());
  // In view {0,1,2}: p0 attempts; p1 and p2 never see the infos.
  faults.drop_to(ProcessId(1), "dv.info");
  faults.drop_to(ProcessId(2), "dv.info");
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  ASSERT_EQ(opt(cluster, 0).state().ambiguous.size(), 1u);
  faults.clear();

  // p0 re-meets p1 in a quorum-less view {0,1}: p1 has Last_Primary =
  // (W0,0) < S.N and no record of S => delete by the second rule.
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2}),
                     ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_TRUE(opt(cluster, 0).state().ambiguous.empty());
  EXPECT_GE(opt(cluster, 0).gc_deletions(), 1u);
}

TEST(OptimizedProtocol, GcUnblocksWhereBasicStaysBlocked) {
  // The availability payoff of GC: after a failed attempt whose session
  // would forbid a successor, resolving it as formed-by-nobody lets the
  // optimized protocol proceed where the basic one cannot.
  for (ProtocolKind kind : {ProtocolKind::kBasic, ProtocolKind::kOptimized}) {
    ClusterOptions options = optimized_options();
    options.kind = kind;
    Cluster cluster(options);
    FaultInjector faults(cluster.sim().network());
    // Fresh start: view {0,1,2,3,4} attempt S=({0..4},1); only p3, p4
    // reach the attempt step (p0,p1,p2 miss the infos).
    faults.drop_to(ProcessId(0), "dv.info");
    faults.drop_to(ProcessId(1), "dv.info");
    faults.drop_to(ProcessId(2), "dv.info");
    cluster.merge();
    cluster.settle();
    EXPECT_FALSE(cluster.live_primary().has_value());
    faults.clear();

    // Now {0,1,2} + p3: p3 holds ambiguous S over all five. {0,1,2,3} IS
    // a sub-quorum of S (4 of 5), so both variants form here. The
    // interesting split is next: {0,1} vs S.
    cluster.partition({ProcessSet::of({0, 1, 3}), ProcessSet::of({2, 4})});
    cluster.settle();
    // {0,1,3} is 3/5 of S = majority, forms under both. Shrink to {0,1}:
    // a majority of {0,1,3}, fine for both. The basic/optimized gap needs
    // the ambiguous session to be resolvable as never-formed; p3 learned
    // exactly that from p0,p1 (their Last_Primary predates S, S not
    // ambiguous at them).
    if (kind == ProtocolKind::kOptimized) {
      EXPECT_TRUE(opt(cluster, 3).state().ambiguous.empty());
    }
    EXPECT_TRUE(cluster.protocol(ProcessId(3)).is_primary());
    EXPECT_TRUE(cluster.checker().check_all().empty());
  }
}

TEST(OptimizedProtocol, DiskLossPeerIsNotTrustedForLearning) {
  // p2 misses an attempt round (holds S ambiguous); p0 loses its disk.
  // p0's empty Last_Formed must NOT convince p2 that p0 never formed S.
  Cluster cluster(optimized_options());
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 4);
  cluster.start();
  ASSERT_EQ(opt(cluster, 2).state().ambiguous.size(), 1u);
  faults.clear();

  cluster.sim().crash_and_destroy_disk(ProcessId(0));
  cluster.settle();
  cluster.recover(ProcessId(0));
  cluster.settle();
  cluster.merge();
  cluster.settle();
  // The group re-forms (survivors have history); consistency holds; and
  // no knowledge was fabricated from the history-less peer (adoption via
  // p1/p3/p4's Last_Formed is fine and expected).
  EXPECT_TRUE(cluster.live_primary().has_value());
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(OptimizedProtocol, CrashRecoverPreservesOptimizedState) {
  Cluster cluster(optimized_options());
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 4);
  cluster.start();
  const auto before = opt(cluster, 2).state();
  ASSERT_FALSE(before.ambiguous.empty());
  cluster.crash(ProcessId(2));
  cluster.settle();
  cluster.recover(ProcessId(2));
  cluster.settle();
  EXPECT_EQ(opt(cluster, 2).state().ambiguous, before.ambiguous);
  EXPECT_EQ(opt(cluster, 2).state().last_formed, before.last_formed);
}

TEST(OptimizedProtocol, TwoRoundsJustLikeBasic) {
  Cluster cluster(optimized_options());
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_DOUBLE_EQ(cluster.checker().rounds_per_form().max(), 2.0);
}

TEST(OptimizedProtocol, RepeatedFailuresDuringFormationStayConsistent) {
  Cluster cluster(optimized_options(23));
  FaultInjector faults(cluster.sim().network());
  cluster.start();
  // Five rounds of: partition while one majority-side member misses the
  // attempt round, then heal.
  for (std::uint32_t round = 0; round < 5; ++round) {
    const ProcessId victim(round % 3);  // someone inside {0,1,2}
    faults.clear();
    faults.drop_to(victim, "dv.attempt", 2);
    cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
    cluster.settle();
    faults.clear();
    cluster.merge();
    cluster.settle();
  }
  EXPECT_TRUE(cluster.live_primary().has_value());
  const auto violations = cluster.checker().check_all();
  EXPECT_TRUE(violations.empty()) << to_string(violations);
}

}  // namespace
}  // namespace dynvote
