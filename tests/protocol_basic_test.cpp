// Integration tests: the basic protocol (paper figure 1) on the full
// simulated stack — quorum succession, tie-breaks, Min_Quorum, crashes,
// recovery, disk loss, view churn.
#include <gtest/gtest.h>

#include "dv/basic_protocol.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"

namespace dynvote {
namespace {

ClusterOptions basic_options(std::uint64_t seed = 1) {
  ClusterOptions options;
  options.kind = ProtocolKind::kBasic;
  options.n = 5;
  options.sim.seed = seed;
  return options;
}

const BasicDvProtocol& dv_state_of(Cluster& cluster, std::uint32_t p) {
  return dynamic_cast<const BasicDvProtocol&>(cluster.protocol(ProcessId(p)));
}

void expect_consistent(Cluster& cluster) {
  const auto violations = cluster.checker().check_all();
  EXPECT_TRUE(violations.empty()) << to_string(violations);
}

TEST(BasicProtocol, FullGroupFormsInitialPrimary) {
  Cluster cluster(basic_options());
  cluster.start();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::range(5));
  EXPECT_EQ(cluster.primary_members(), ProcessSet::range(5));
  expect_consistent(cluster);
}

TEST(BasicProtocol, FormingClearsAmbiguousSessions) {
  Cluster cluster(basic_options());
  cluster.start();
  for (std::uint32_t p = 0; p < 5; ++p) {
    EXPECT_TRUE(dv_state_of(cluster, p).state().ambiguous.empty());
    EXPECT_TRUE(dv_state_of(cluster, p).state().last_primary.has_value());
  }
}

TEST(BasicProtocol, SessionNumbersAdvanceTogether) {
  Cluster cluster(basic_options());
  cluster.start();
  const auto n0 = dv_state_of(cluster, 0).state().session_number;
  for (std::uint32_t p = 1; p < 5; ++p) {
    EXPECT_EQ(dv_state_of(cluster, p).state().session_number, n0);
  }
  EXPECT_GT(n0, 0);
}

TEST(BasicProtocol, MajoritySideKeepsPrimaryAfterPartition) {
  Cluster cluster(basic_options());
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1, 2}));
  EXPECT_FALSE(cluster.protocol(ProcessId(3)).is_primary());
  EXPECT_FALSE(cluster.protocol(ProcessId(4)).is_primary());
  expect_consistent(cluster);
}

TEST(BasicProtocol, QuorumChainShrinksToOneProcess) {
  // 5 -> 3 -> 2 -> 1: each step a majority (or tie-win) of the previous.
  Cluster cluster(basic_options());
  cluster.start();
  cluster.partition({ProcessSet::of({2, 3, 4}), ProcessSet::of({0, 1})});
  cluster.settle();
  cluster.partition({ProcessSet::of({3, 4}), ProcessSet::of({2})});
  cluster.settle();
  cluster.partition({ProcessSet::of({4}), ProcessSet::of({3})});
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({4}));
  expect_consistent(cluster);
}

TEST(BasicProtocol, ExactHalfResolvedByLinearOrder) {
  // From {0,1,2,3}: the half containing p3 (top-ranked) wins the tie.
  ClusterOptions options = basic_options();
  options.n = 4;
  Cluster cluster(options);
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3})});
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({2, 3}));
  EXPECT_FALSE(cluster.protocol(ProcessId(0)).is_primary());
  expect_consistent(cluster);
}

TEST(BasicProtocol, MinoritySideRejectsWithReason) {
  Cluster cluster(basic_options());
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_GT(cluster.checker().rejected_sessions(), 0u);
}

TEST(BasicProtocol, MinQuorumBlocksSingletons) {
  ClusterOptions options = basic_options();
  options.config.min_quorum = 2;
  Cluster cluster(options);
  cluster.start();
  cluster.partition({ProcessSet::of({2, 3, 4}), ProcessSet::of({0, 1})});
  cluster.settle();
  cluster.partition({ProcessSet::of({4}), ProcessSet::of({2, 3})});
  cluster.settle();
  // {2,3} (majority of {2,3,4}, two core members) may proceed; the
  // singleton {4} cannot.
  EXPECT_FALSE(cluster.protocol(ProcessId(4)).is_primary());
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({2, 3}));
  // And {2,3} can never shrink to a singleton either.
  cluster.partition({ProcessSet::of({2}), ProcessSet::of({3}),
                     ProcessSet::of({4})});
  cluster.settle();
  EXPECT_FALSE(cluster.live_primary().has_value());
  expect_consistent(cluster);
}

TEST(BasicProtocol, MinQuorumUnconditionalClauseUnblocksLargeGroup) {
  // After the primary is lost in small pieces, a group of more than
  // n - Min_Quorum core members proceeds regardless of history.
  ClusterOptions options = basic_options();
  options.config.min_quorum = 2;
  Cluster cluster(options);
  cluster.start();
  // Split so no component can form: {0,1} {2,3} {4} after primary {0..4}.
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3}),
                     ProcessSet::of({4})});
  cluster.settle();
  EXPECT_FALSE(cluster.live_primary().has_value());
  // Reconnect 4 of 5 (> n - Min_Quorum = 3): unconditional clause fires.
  cluster.partition({ProcessSet::of({0, 1, 2, 3}), ProcessSet::of({4})});
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1, 2, 3}));
  expect_consistent(cluster);
}

TEST(BasicProtocol, MergeAfterPartitionRestoresFullPrimary) {
  Cluster cluster(basic_options());
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  cluster.merge();
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::range(5));
  expect_consistent(cluster);
}

TEST(BasicProtocol, MinorityCannotFormEvenAfterInternalChurn) {
  Cluster cluster(basic_options());
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  // The minority reshuffles internally; still no quorum.
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3}),
                     ProcessSet::of({4})});
  cluster.settle();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_FALSE(cluster.protocol(ProcessId(3)).is_primary());
  EXPECT_FALSE(cluster.protocol(ProcessId(4)).is_primary());
  expect_consistent(cluster);
}

TEST(BasicProtocol, CrashOfMinorityKeepsPrimaryAlive) {
  Cluster cluster(basic_options());
  cluster.start();
  cluster.crash(ProcessId(4));
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1, 2, 3}));
  expect_consistent(cluster);
}

TEST(BasicProtocol, CrashedProcessRecoversStateFromStableStorage) {
  Cluster cluster(basic_options());
  cluster.start();
  const auto before = dv_state_of(cluster, 4).state();
  cluster.crash(ProcessId(4));
  cluster.settle();
  cluster.recover(ProcessId(4));
  cluster.settle();
  const auto& after = dv_state_of(cluster, 4).state();
  EXPECT_EQ(after.last_primary, before.last_primary);
  EXPECT_TRUE(after.has_history);
  cluster.merge();
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::range(5));
  expect_consistent(cluster);
}

TEST(BasicProtocol, DiskLossComesBackAsInfinityButSystemProceeds) {
  Cluster cluster(basic_options());
  cluster.start();
  cluster.sim().crash_and_destroy_disk(ProcessId(4));
  cluster.settle();
  cluster.recover(ProcessId(4));
  cluster.settle();
  const auto& state = dv_state_of(cluster, 4).state();
  EXPECT_FALSE(state.last_primary.has_value());  // (∞, -1), paper footnote 4
  EXPECT_FALSE(state.has_history);
  cluster.merge();
  cluster.settle();
  // The survivors' history carries the group: a primary still forms.
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::range(5));
  expect_consistent(cluster);
}

TEST(BasicProtocol, AllDisksDestroyedMeansNoPrimaryEver) {
  // Sub_Quorum(∞, T) is FALSE: with every history gone, nothing can form.
  Cluster cluster(basic_options());
  cluster.start();
  for (std::uint32_t p = 0; p < 5; ++p) {
    cluster.sim().crash_and_destroy_disk(ProcessId(p));
  }
  cluster.settle();
  for (std::uint32_t p = 0; p < 5; ++p) cluster.recover(ProcessId(p));
  cluster.merge();
  cluster.settle();
  EXPECT_FALSE(cluster.live_primary().has_value());
  EXPECT_GT(cluster.checker().rejected_sessions(), 0u);
}

TEST(BasicProtocol, LosesPrimacyInstantlyOnViewChange) {
  Cluster cluster(basic_options());
  cluster.start();
  ASSERT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
  // Any new view sets Is_Primary to FALSE in step 1 — even a spurious one.
  cluster.oracle().inject_view(ProcessSet::range(5));
  cluster.sim().run_until(cluster.sim().now() + 900);  // views delivered
  // After the session completes it becomes primary again.
  cluster.settle();
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
  expect_consistent(cluster);
}

TEST(BasicProtocol, SpuriousMinorityViewDoesNotFormQuorum) {
  Cluster cluster(basic_options());
  cluster.start();
  // The oracle lies to {3,4}: claims they are alone. They must not form.
  cluster.oracle().inject_view(ProcessSet::of({3, 4}));
  cluster.settle();
  EXPECT_FALSE(cluster.protocol(ProcessId(3)).is_primary());
  EXPECT_FALSE(cluster.protocol(ProcessId(4)).is_primary());
  expect_consistent(cluster);
}

TEST(BasicProtocol, RepeatedPartitionMergeCyclesStayConsistent) {
  Cluster cluster(basic_options(7));
  cluster.start();
  for (int round = 0; round < 10; ++round) {
    cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
    cluster.settle();
    cluster.merge();
    cluster.settle();
  }
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::range(5));
  expect_consistent(cluster);
}

TEST(BasicProtocol, UsesExactlyTwoRounds) {
  Cluster cluster(basic_options());
  cluster.start();
  EXPECT_DOUBLE_EQ(cluster.checker().rounds_per_form().mean(), 2.0);
  EXPECT_DOUBLE_EQ(cluster.checker().rounds_per_form().max(), 2.0);
}

TEST(BasicProtocol, AttemptRecordedWhenFormIsCut) {
  // Drop all attempt deliveries to p2: everyone else forms; p2 keeps the
  // session as ambiguous. This is the protocol's core safety mechanism.
  Cluster cluster(basic_options());
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt");
  cluster.start();
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
  EXPECT_FALSE(cluster.protocol(ProcessId(2)).is_primary());
  const auto& state = dv_state_of(cluster, 2).state();
  ASSERT_EQ(state.ambiguous.size(), 1u);
  EXPECT_EQ(state.ambiguous[0].session.members, ProcessSet::range(5));
  expect_consistent(cluster);
}

}  // namespace
}  // namespace dynvote
