// Unit/integration tests: schedule generation, paired availability runs,
// metrics collection, trace recording, fault-injector mechanics.
#include <gtest/gtest.h>

#include "harness/availability.hpp"
#include "harness/cluster.hpp"
#include "harness/metrics.hpp"
#include "harness/scenario.hpp"
#include "harness/schedule.hpp"

namespace dynvote {
namespace {

TEST(Schedule, DeterministicForASeed) {
  ScheduleOptions options;
  options.seed = 9;
  const auto a = generate_schedule(ProcessSet::range(5), options);
  const auto b = generate_schedule(ProcessSet::range(5), options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_string(), b[i].to_string());
  }
  EXPECT_FALSE(a.empty());
}

TEST(Schedule, DifferentSeedsDiffer) {
  ScheduleOptions options;
  options.seed = 1;
  const auto a = generate_schedule(ProcessSet::range(5), options);
  options.seed = 2;
  const auto b = generate_schedule(ProcessSet::range(5), options);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].to_string() != b[i].to_string();
  }
  EXPECT_TRUE(differs);
}

TEST(Schedule, EventsAreOrderedAndWithinDuration) {
  ScheduleOptions options;
  options.duration = 500'000;
  const auto schedule = generate_schedule(ProcessSet::range(6), options);
  SimTime last = 0;
  for (const auto& event : schedule) {
    EXPECT_GE(event.time, last);
    EXPECT_LT(event.time, options.duration);
    last = event.time;
  }
}

TEST(Schedule, PartitionGroupsAreDisjointNonEmpty) {
  ScheduleOptions options;
  options.seed = 17;
  const auto schedule = generate_schedule(ProcessSet::range(7), options);
  for (const auto& event : schedule) {
    if (event.kind != ScheduleEvent::Kind::kPartition) continue;
    ASSERT_EQ(event.groups.size(), 2u);
    EXPECT_FALSE(event.groups[0].empty());
    EXPECT_FALSE(event.groups[1].empty());
    EXPECT_FALSE(event.groups[0].intersects(event.groups[1]));
  }
}

TEST(Schedule, ReplayIsLegalOnTheSimulator) {
  // The strongest structural test: every generated event applies cleanly
  // (set_components validates disjointness; crash/recover validate
  // liveness transitions).
  ScheduleOptions options;
  options.seed = 23;
  options.duration = 1'000'000;
  const auto schedule = generate_schedule(ProcessSet::range(6), options);
  ClusterOptions base;
  base.n = 6;
  const auto result = run_schedule(ProtocolKind::kOptimized, schedule, base);
  EXPECT_GT(result.formed_sessions, 0u);
  EXPECT_EQ(result.violations, 0u);
}

TEST(Availability, PairedComparisonOrdersProtocolsAsThePaperClaims) {
  ClusterOptions base;
  base.n = 5;
  ScheduleOptions schedule;
  schedule.duration = 1'500'000;
  schedule.seed = 100;
  const auto results = compare_protocols(
      {ProtocolKind::kOptimized, ProtocolKind::kStaticMajority,
       ProtocolKind::kBlockingDynamic},
      base, schedule, 3);
  ASSERT_EQ(results.size(), 3u);
  const double ours = results[0].availability;
  const double stat = results[1].availability;
  const double blocking = results[2].availability;
  // Dynamic voting beats static majority; non-blocking beats blocking.
  EXPECT_GE(ours, stat);
  EXPECT_GE(ours, blocking);
  EXPECT_EQ(results[0].violations, 0u);
  EXPECT_EQ(results[2].violations, 0u);
}

TEST(Availability, ConsistentProtocolsNeverViolateOnRandomSchedules) {
  ClusterOptions base;
  base.n = 5;
  ScheduleOptions schedule;
  schedule.duration = 800'000;
  for (std::uint64_t seed = 200; seed < 205; ++seed) {
    schedule.seed = seed;
    const auto events = generate_schedule(ProcessSet::range(5), schedule);
    for (ProtocolKind kind :
         {ProtocolKind::kBasic, ProtocolKind::kOptimized,
          ProtocolKind::kBlockingDynamic, ProtocolKind::kHybridJm}) {
      const auto result = run_schedule(kind, events, base);
      EXPECT_EQ(result.violations, 0u)
          << to_string(kind) << " seed " << seed;
    }
  }
}

TEST(Metrics, CollectsTrafficAndStorage) {
  ClusterOptions options;
  options.kind = ProtocolKind::kBasic;
  options.n = 5;
  Cluster cluster(options);
  cluster.start();
  const RunMetrics metrics = RunMetrics::collect(cluster);
  EXPECT_GT(metrics.messages_sent, 0u);
  EXPECT_GT(metrics.bytes_sent, 0u);
  EXPECT_GT(metrics.storage_writes, 0u);
  EXPECT_EQ(metrics.formed_sessions, 2u);  // F0 + the first real session
  EXPECT_DOUBLE_EQ(metrics.mean_rounds, 2.0);
  EXPECT_GT(metrics.messages_per_formed(), 0.0);
  EXPECT_FALSE(metrics.to_string().empty());
}

TEST(FaultInjector, CountsAndExpiresRules) {
  ClusterOptions options;
  options.n = 3;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());
  const int rule = faults.drop_to(ProcessId(0), "dv.info", 1);
  cluster.start();
  // Only ONE info message to p0 was dropped; the session still finishes
  // after the membership oracle's next view? No — within one view the
  // message is simply lost and the session hangs. What matters here:
  // exactly one drop happened.
  EXPECT_EQ(faults.dropped(rule), 1u);
  EXPECT_EQ(faults.total_dropped(), 1u);
  faults.remove(rule);
  EXPECT_EQ(faults.dropped(rule), 0u);  // unknown rule reports zero
}

TEST(FaultInjector, LinkRuleMatchesSenderToo) {
  ClusterOptions options;
  options.n = 3;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());
  faults.drop_link(ProcessId(1), ProcessId(0), "dv.info");
  cluster.start();
  // p0 misses only p1's info: the first session cannot complete at p0,
  // but p1->p2 and p2->p0 traffic flows.
  EXPECT_FALSE(cluster.protocol(ProcessId(0)).is_primary());
  EXPECT_GE(faults.total_dropped(), 1u);
}

TEST(Trace, RecordsProtocolNarrative) {
  ClusterOptions options;
  options.n = 3;
  Cluster cluster(options);
  cluster.start();
  const auto& entries = cluster.trace().entries();
  ASSERT_FALSE(entries.empty());
  bool saw_form = false;
  for (const auto& entry : entries) {
    saw_form |= entry.text.find("FORMS") != std::string::npos;
  }
  EXPECT_TRUE(saw_form);
  EXPECT_FALSE(cluster.trace().to_string().empty());
}

TEST(Cluster, LivePrimaryNulloptWhenNoneOrAmbiguous) {
  ClusterOptions options;
  options.n = 4;
  Cluster cluster(options);
  // Before any view settles: nobody is primary.
  EXPECT_FALSE(cluster.live_primary().has_value());
}

}  // namespace
}  // namespace dynvote
