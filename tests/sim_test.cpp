// Unit tests: event queue and stable storage.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/stable_storage.hpp"
#include "util/ensure.hpp"

namespace dynvote::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&] { order.push_back(1); });
  q.schedule_at(5, [&] { order.push_back(2); });
  q.schedule_at(5, [&] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime seen = 0;
  q.schedule_at(100, [&] {
    q.schedule_after(50, [&] { seen = q.now(); });
  });
  q.run_all();
  EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_after(10, chain);
  };
  q.schedule_at(0, chain);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, RejectsSchedulingIntoThePast) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(5, [] {}), InvariantViolation);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventToken token = q.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(token));
  EXPECT_FALSE(q.cancel(token));
  q.run_all();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  EXPECT_EQ(q.run_until(500), 0u);
  EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(10, [&] { ++ran; });
  q.schedule_at(20, [&] { ++ran; });
  q.schedule_at(30, [&] { ++ran; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.now(), 20u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunAllHonorsEventLimit) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_after(1, forever); };
  q.schedule_at(0, forever);
  EXPECT_EQ(q.run_all(100), 100u);
  EXPECT_FALSE(q.empty());
}

TEST(StableStorage, PutGetErase) {
  StableStorage storage;
  EXPECT_EQ(storage.get("k"), std::nullopt);
  storage.put("k", {1, 2, 3});
  EXPECT_EQ(storage.get("k"), (std::vector<std::uint8_t>{1, 2, 3}));
  storage.put("k", {9});
  EXPECT_EQ(storage.get("k"), (std::vector<std::uint8_t>{9}));
  EXPECT_TRUE(storage.erase("k"));
  EXPECT_FALSE(storage.erase("k"));
  EXPECT_EQ(storage.get("k"), std::nullopt);
}

TEST(StableStorage, DestroyWipesEverything) {
  StableStorage storage;
  storage.put("a", {1});
  storage.put("b", {2});
  EXPECT_EQ(storage.entry_count(), 2u);
  EXPECT_FALSE(storage.destroyed_once());
  storage.destroy();
  EXPECT_TRUE(storage.destroyed_once());
  EXPECT_EQ(storage.entry_count(), 0u);
  EXPECT_EQ(storage.get("a"), std::nullopt);
}

TEST(StableStorage, TracksWriteMetrics) {
  StableStorage storage;
  storage.put("a", {1, 2, 3});
  storage.put("b", {4});
  EXPECT_EQ(storage.writes(), 2u);
  EXPECT_EQ(storage.bytes_written(), 4u);
}

TEST(StableStorage, InternIsIdempotentAndSharedWithStringShims) {
  StableStorage storage;
  const StableStorage::KeyId id = storage.intern("k");
  EXPECT_EQ(storage.intern("k"), id);
  EXPECT_NE(storage.intern("other"), id);

  const std::uint8_t bytes[] = {7, 8};
  storage.put(id, bytes, sizeof bytes);
  EXPECT_EQ(storage.get("k"), (std::vector<std::uint8_t>{7, 8}));
  storage.put("k", {9});
  ASSERT_NE(storage.value(id), nullptr);
  EXPECT_EQ(*storage.value(id), (std::vector<std::uint8_t>{9}));
}

TEST(StableStorage, AppendLogTruncate) {
  StableStorage storage;
  const StableStorage::KeyId id = storage.intern("k");
  EXPECT_EQ(storage.log_bytes(id), 0u);
  const std::uint8_t a[] = {1, 2};
  const std::uint8_t b[] = {3};
  storage.append(id, a, sizeof a);
  storage.append(id, b, sizeof b);
  EXPECT_EQ(storage.log(id), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(storage.log_records(id), 2u);
  EXPECT_EQ(storage.log_bytes(id), 3u);
  // The log and the value slot are independent surfaces of one key.
  EXPECT_EQ(storage.value(id), nullptr);
  // Appends count as writes, and separately as appends.
  EXPECT_EQ(storage.writes(), 2u);
  EXPECT_EQ(storage.appends(), 2u);
  EXPECT_EQ(storage.bytes_written(), 3u);

  storage.truncate_log(id);
  EXPECT_EQ(storage.log_bytes(id), 0u);
  EXPECT_EQ(storage.log_records(id), 0u);
}

TEST(StableStorage, DestroyWipesLogsButKeepsInternedIds) {
  StableStorage storage;
  const StableStorage::KeyId id = storage.intern("k");
  const std::uint8_t a[] = {1};
  storage.append(id, a, sizeof a);
  storage.put(id, a, sizeof a);
  EXPECT_EQ(storage.entry_count(), 1u);
  storage.destroy();
  EXPECT_EQ(storage.entry_count(), 0u);
  EXPECT_EQ(storage.log_bytes(id), 0u);
  EXPECT_EQ(storage.value(id), nullptr);
  // The id still names the same slot after the disk loss.
  EXPECT_EQ(storage.intern("k"), id);
}

TEST(StableStorage, RejectsForeignKeyIds) {
  StableStorage storage;
  const std::uint8_t a[] = {1};
  EXPECT_THROW(storage.put(StableStorage::KeyId{42}, a, sizeof a),
               dynvote::InvariantViolation);
}

}  // namespace
}  // namespace dynvote::sim
