// Unit tests: the sharded multi-group service layer (src/shard/) —
// key-range routing, correlated fleet faults, per-group consistency,
// and the sharded KV integration.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "shard/shard_map.hpp"
#include "shard/sharded_fleet.hpp"
#include "shard/sharded_kv.hpp"
#include "util/ensure.hpp"

namespace dynvote::shard {
namespace {

// ---- ShardMap ---------------------------------------------------------------

TEST(ShardMap, RoutingIsDeterministicAndInRange) {
  const ShardMap map(128);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::uint32_t shard = map.shard_of(key);
    EXPECT_LT(shard, 128u);
    EXPECT_EQ(shard, map.shard_of(key));  // stable
  }
}

TEST(ShardMap, ShardMatchesItsHashRange) {
  const ShardMap map(7);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::uint64_t hash = key_hash64(key);
    const std::uint32_t shard = map.shard_of(key);
    const auto [first, last] = map.range_of(shard);
    EXPECT_GE(hash, first) << key;
    EXPECT_LE(hash, last) << key;
  }
}

TEST(ShardMap, RangesTileTheHashSpace) {
  const ShardMap map(5);
  std::uint64_t expected_first = 0;
  for (std::uint32_t s = 0; s < 5; ++s) {
    const auto [first, last] = map.range_of(s);
    EXPECT_EQ(first, expected_first);
    EXPECT_GE(last, first);
    expected_first = last + 1;
  }
  EXPECT_EQ(map.range_of(4).second, ~std::uint64_t{0});
}

TEST(ShardMap, SpreadsKeysAcrossShards) {
  const ShardMap map(16);
  std::set<std::uint32_t> hit;
  for (int i = 0; i < 400; ++i) hit.insert(map.shard_of("k" + std::to_string(i)));
  // 400 hashed keys over 16 equal ranges: every shard should see some.
  EXPECT_EQ(hit.size(), 16u);
}

// ---- ShardedFleet ----------------------------------------------------------

ShardedFleetOptions small_fleet_options() {
  ShardedFleetOptions options;
  options.num_groups = 6;
  options.group_size = 3;
  options.num_machines = 6;
  options.sim.seed = 5;
  return options;
}

TEST(ShardedFleet, MachinesHostReplicasOfManyGroups) {
  ShardedFleet fleet(small_fleet_options());
  // 6 groups x 3 replicas over 6 machines: every machine hosts replicas
  // of 3 distinct groups — the "process in many groups at once" shape.
  for (std::uint32_t m = 0; m < fleet.num_machines(); ++m) {
    EXPECT_EQ(fleet.machine_replicas(m).size(), 3u);
  }
  // Within one group the hosting machines are distinct.
  for (std::uint32_t g = 0; g < fleet.num_groups(); ++g) {
    std::set<std::uint32_t> machines;
    for (std::uint32_t i = 0; i < fleet.group_size(); ++i) {
      machines.insert(fleet.machine_of(g, i));
    }
    EXPECT_EQ(machines.size(), fleet.group_size());
  }
}

TEST(ShardedFleet, StartFormsAPrimaryInEveryGroup) {
  ShardedFleet fleet(small_fleet_options());
  fleet.start();
  EXPECT_EQ(fleet.groups_with_live_primary(), fleet.num_groups());
  EXPECT_GE(fleet.total_formed_sessions(), std::uint64_t{fleet.num_groups()});
  EXPECT_TRUE(fleet.check_all_groups().empty());
}

TEST(ShardedFleet, ComponentsNeverSpanGroups) {
  ShardedFleet fleet(small_fleet_options());
  fleet.start();
  fleet.partition_fleet({{0, 1, 2}, {3, 4, 5}});
  fleet.settle();
  for (const ProcessSet& component :
       fleet.sim().network().live_components()) {
    bool inside_one_group = false;
    for (std::uint32_t g = 0; g < fleet.num_groups(); ++g) {
      if (component.is_subset_of(fleet.group_members(g))) {
        inside_one_group = true;
        break;
      }
    }
    EXPECT_TRUE(inside_one_group)
        << "component spans groups: " << component.to_string();
  }
}

TEST(ShardedFleet, CorrelatedCutReconfiguresEveryGroupConsistently) {
  ShardedFleet fleet(small_fleet_options());
  fleet.start();
  // Cut machines 0-2 from 3-5: every group has replicas on both sides
  // (rotating placement), so every group reconfigures; a 2-vs-1 split
  // leaves the majority side primary.
  fleet.partition_fleet({{0, 1, 2}, {3, 4, 5}});
  fleet.settle();
  EXPECT_EQ(fleet.groups_with_live_primary(), fleet.num_groups());
  fleet.merge_fleet();
  fleet.settle();
  EXPECT_EQ(fleet.groups_with_live_primary(), fleet.num_groups());
  EXPECT_TRUE(fleet.check_all_groups().empty());
  // Both the cut and the heal opened reconfiguration windows that later
  // formations closed.
  EXPECT_GE(fleet.reconfig_latencies().size(), std::size_t{fleet.num_groups()});
  for (const double sample : fleet.reconfig_latencies()) {
    EXPECT_GT(sample, 0.0);
  }
}

TEST(ShardedFleet, MachineCrashHitsAllHostedGroups) {
  ShardedFleet fleet(small_fleet_options());
  fleet.start();
  const std::size_t formed_before = fleet.total_formed_sessions();
  fleet.crash_machine(0);
  fleet.settle();
  // Machine 0 hosts one replica of 3 groups; each survivor pair still
  // holds a 2-of-3 quorum and reforms.
  EXPECT_EQ(fleet.groups_with_live_primary(), fleet.num_groups());
  EXPECT_GT(fleet.total_formed_sessions(), formed_before);
  fleet.recover_machine(0);
  fleet.settle();
  EXPECT_EQ(fleet.groups_with_live_primary(), fleet.num_groups());
  EXPECT_TRUE(fleet.check_all_groups().empty());
}

TEST(ShardedFleet, GroupsFailIndependentlyUnderMinorityCuts) {
  // Cut exactly one machine away: each hosted group drops to 2-of-3 (still
  // quorum); the detached singletons must not be primary.
  ShardedFleet fleet(small_fleet_options());
  fleet.start();
  fleet.partition_fleet({{0}, {1, 2, 3, 4, 5}});
  fleet.settle();
  EXPECT_EQ(fleet.groups_with_live_primary(), fleet.num_groups());
  for (const ProcessId p : fleet.machine_replicas(0)) {
    for (std::uint32_t g = 0; g < fleet.num_groups(); ++g) {
      for (std::uint32_t i = 0; i < fleet.group_size(); ++i) {
        if (fleet.replica_id(g, i) == p) {
          EXPECT_FALSE(fleet.protocol(g, i).is_primary());
        }
      }
    }
  }
}

TEST(ShardedFleet, RejectsIncompleteMachinePartitions) {
  ShardedFleet fleet(small_fleet_options());
  fleet.start();
  EXPECT_THROW(fleet.partition_fleet({{0, 1}}), InvariantViolation);
  EXPECT_THROW(fleet.partition_fleet({{0, 1, 2}, {2, 3, 4, 5}}),
               InvariantViolation);
}

// ---- ShardedKv --------------------------------------------------------------

TEST(ShardedKv, RoutesWritesToTheKeyRangeGroup) {
  ShardedFleet fleet(small_fleet_options());
  ShardedKv kv(fleet);
  fleet.start();
  const std::string key = "routed-key";
  const std::uint32_t group = kv.group_of(key);
  ASSERT_TRUE(kv.write(key, "value").has_value());
  // Exactly one replica — in the routed group — holds the key.
  for (std::uint32_t g = 0; g < fleet.num_groups(); ++g) {
    bool held = false;
    for (std::uint32_t i = 0; i < fleet.group_size(); ++i) {
      held |= kv.replica(g, i).read(key).has_value();
    }
    EXPECT_EQ(held, g == group) << "group " << g;
  }
  EXPECT_EQ(kv.read(key), "value");
}

TEST(ShardedKv, WritesSurviveCorrelatedFaultsWithoutDivergence) {
  ShardedFleet fleet(small_fleet_options());
  ShardedKv kv(fleet);
  fleet.start();
  for (int i = 0; i < 30; ++i) {
    kv.write("k" + std::to_string(i), "before");
  }
  fleet.partition_fleet({{0, 1, 2}, {3, 4, 5}});
  fleet.settle();
  for (int i = 0; i < 30; ++i) {
    kv.write("k" + std::to_string(i), "during");
  }
  fleet.merge_fleet();
  fleet.settle();
  kv.sync_primaries();
  EXPECT_TRUE(kv.audit().empty());
  EXPECT_GT(kv.accepted_writes(), 0u);
  // Every key accepted during the cut reads back as the newest value
  // after the heal and state transfer.
  for (int i = 0; i < 30; ++i) {
    const auto value = kv.read("k" + std::to_string(i));
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, "during");
  }
}

TEST(ShardedKv, WritesToPrimarylessShardsAreRejectedNotMisrouted) {
  ShardedFleetOptions options = small_fleet_options();
  ShardedFleet fleet(options);
  ShardedKv kv(fleet);
  fleet.start();
  // Shatter the fleet: every machine alone. Groups of size 3 with
  // min_quorum 1 keep no majority anywhere -> no shard has a primary.
  fleet.partition_fleet({{0}, {1}, {2}, {3}, {4}, {5}});
  fleet.settle();
  EXPECT_EQ(fleet.groups_with_live_primary(), 0u);
  EXPECT_FALSE(kv.write("anything", "x").has_value());
  EXPECT_GT(kv.rejected_writes(), 0u);
  fleet.merge_fleet();
  fleet.settle();
  EXPECT_EQ(fleet.groups_with_live_primary(), fleet.num_groups());
  EXPECT_TRUE(kv.write("anything", "x").has_value());
}

// ---- sweep-pool determinism over fleets ------------------------------------

/// Everything a bench digest would hash for one fleet run.
struct FleetDigest {
  std::uint64_t executed = 0;
  std::uint64_t horizon = 0;
  std::uint64_t formed = 0;
  std::uint64_t accepted = 0;
  std::vector<double> latencies;

  bool operator==(const FleetDigest&) const = default;
};

FleetDigest run_fleet_cell(std::size_t seed) {
  ShardedFleetOptions options;
  options.num_groups = 8;
  options.group_size = 3;
  options.num_machines = 6;
  options.sim.seed = 300 + seed;
  ShardedFleet fleet(options);
  ShardedKv kv(fleet);
  fleet.start();
  fleet.partition_fleet({{0, 1, 2}, {3, 4, 5}});
  fleet.settle();
  for (int i = 0; i < 10; ++i) kv.write("k" + std::to_string(i), "v");
  fleet.merge_fleet();
  fleet.settle();
  FleetDigest digest;
  digest.executed = fleet.sim().queue().executed();
  digest.horizon = fleet.sim().now();
  digest.formed = fleet.total_formed_sessions();
  digest.accepted = kv.accepted_writes();
  digest.latencies = fleet.reconfig_latencies();
  return digest;
}

// Named Sweep* so run_experiments.sh's TSan pass picks it up: this is
// the multi-group path running on the real thread pool.
TEST(SweepShards, PooledFleetDigestsMatchSerial) {
  constexpr std::size_t kSeeds = 6;
  const auto serial = sweep_map<FleetDigest>(kSeeds, 1, run_fleet_cell);
  const auto pooled = sweep_map<FleetDigest>(kSeeds, sweep_thread_count(0),
                                             run_fleet_cell);
  EXPECT_EQ(serial, pooled);
  for (const FleetDigest& digest : serial) {
    EXPECT_GT(digest.formed, 0u);
  }
}

}  // namespace
}  // namespace dynvote::shard
