// Unit tests: the observability layer — JSON codec, metrics registry,
// trace ring buffer, deterministic trace export, and the checker's
// trace-replay mode.
#include <gtest/gtest.h>

#include <string>

#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "harness/trace_replay.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace dynvote {
namespace {

// ---- util/json --------------------------------------------------------------

TEST(JsonTest, RoundTripsScalarsAndContainers) {
  JsonValue obj = JsonValue::object();
  obj.set("b", JsonValue(true));
  obj.set("i", JsonValue(std::int64_t{-42}));
  obj.set("u", JsonValue(std::uint64_t{18446744073709551615ULL}));
  obj.set("d", JsonValue(0.25));
  obj.set("s", JsonValue("with \"quotes\" and\nnewline"));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue(std::uint64_t{1}));
  arr.push_back(JsonValue(nullptr));
  obj.set("a", std::move(arr));

  const std::string text = obj.dump();
  const JsonValue parsed = JsonValue::parse(text);
  EXPECT_TRUE(parsed.at("b").as_bool());
  EXPECT_EQ(parsed.at("i").as_int(), -42);
  EXPECT_EQ(parsed.at("u").as_uint(), 18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(parsed.at("d").as_double(), 0.25);
  EXPECT_EQ(parsed.at("s").as_string(), "with \"quotes\" and\nnewline");
  ASSERT_EQ(parsed.at("a").as_array().size(), 2u);
  EXPECT_TRUE(parsed.at("a").as_array()[1].is_null());
  // Serialization is deterministic: a reparse dumps identically.
  EXPECT_EQ(parsed.dump(), text);
}

TEST(JsonTest, PreservesObjectInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj.set("zebra", JsonValue(std::uint64_t{1}));
  obj.set("apple", JsonValue(std::uint64_t{2}));
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2}");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), JsonError);
  EXPECT_THROW(JsonValue::parse("[1,]"), JsonError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonError);
  EXPECT_THROW(JsonValue::parse("{} trailing"), JsonError);
  EXPECT_THROW(JsonValue::parse("nul"), JsonError);
}

// ---- obs/metrics ------------------------------------------------------------

TEST(MetricsTest, CountersGaugesHistograms) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(3);
  registry.counter("c").increment();
  EXPECT_EQ(registry.counter_value("c"), 4u);
  EXPECT_EQ(registry.counter_value("never-touched"), 0u);

  obs::Gauge& g = registry.gauge("g");
  g.set(7);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 7);

  obs::Histogram& h = registry.histogram("h");
  h.observe(1);
  h.observe(5);
  h.observe(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);

  const JsonValue json = registry.to_json();
  EXPECT_EQ(json.at("counters").at("c").as_uint(), 4u);
  EXPECT_EQ(json.at("gauges").at("g").at("max").as_int(), 7);
  EXPECT_EQ(json.at("histograms").at("h").at("count").as_uint(), 3u);

  registry.reset();
  EXPECT_EQ(registry.counter_value("c"), 0u);
  EXPECT_EQ(g.max(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsTest, ResetClearsHistogramMinForTheNextObservation) {
  // Regression: reset() used to leave min_ at the last observed value,
  // so the first post-reset observation above it never lowered the
  // minimum — and a merge_from a reset histogram poisoned the target.
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("h");
  h.observe(3);
  registry.reset();
  EXPECT_EQ(h.min(), 0u);  // empty again
  h.observe(50);
  EXPECT_EQ(h.min(), 50u);

  obs::Histogram target;
  target.observe(100);
  obs::Histogram empty;
  target.merge_from(empty);
  EXPECT_EQ(target.min(), 100u);  // empty source is a no-op
}

TEST(MetricsTest, QuantileInterpolatesWithinPowerOfTwoBuckets) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  h.observe(7);
  EXPECT_EQ(h.quantile(0.0), 7.0);  // single value: clamped to [min,max]
  EXPECT_EQ(h.quantile(1.0), 7.0);
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
  // Power-of-two buckets are coarse; the estimate must land within the
  // bucket that holds the exact answer (here (512, 1024] around 500).
  const double p50 = h.quantile(0.50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);  // clamped to the observed max
  EXPECT_LE(h.quantile(0.10), p50);
  EXPECT_LE(p50, p99);
}

TEST(MetricsTest, MergedHistogramEqualsHistogramOfConcatenatedStreams) {
  obs::Histogram left, right, all;
  for (std::uint64_t v : {1u, 8u, 9u, 500u}) { left.observe(v); all.observe(v); }
  for (std::uint64_t v : {2u, 3u, 700u}) { right.observe(v); all.observe(v); }
  obs::Histogram merged = left;
  merged.merge_from(right);
  EXPECT_EQ(merged, all);
  EXPECT_EQ(merged.quantile(0.5), all.quantile(0.5));
}

TEST(MetricsTest, InstrumentReferencesStayValidAcrossRegistrations) {
  obs::MetricsRegistry registry;
  obs::Counter& first = registry.counter("a");
  for (int i = 0; i < 100; ++i) {
    registry.counter("x" + std::to_string(i));
  }
  first.increment();
  EXPECT_EQ(registry.counter_value("a"), 1u);
}

// ---- obs/trace --------------------------------------------------------------

obs::TraceEvent event_at(SimTime t) {
  obs::TraceEvent e;
  e.time = t;
  e.kind = obs::TraceEventKind::kViewInstalled;
  return e;
}

TEST(TraceSinkTest, RingBufferEvictsOldest) {
  obs::TraceSink sink(3);
  for (SimTime t = 0; t < 5; ++t) sink.record(event_at(t));
  ASSERT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.events().front().time, 2u);
  EXPECT_EQ(sink.events().back().time, 4u);
  EXPECT_EQ(sink.overwritten(), 2u);
}

TEST(TraceSinkTest, MessageEventsAreGatedSeparately) {
  obs::TraceSink sink;
  obs::TraceEvent message;
  message.kind = obs::TraceEventKind::kMessageSend;
  sink.record(message);
  EXPECT_EQ(sink.size(), 0u);  // off by default
  sink.set_messages_enabled(true);
  sink.record(message);
  EXPECT_EQ(sink.size(), 1u);
  sink.record(event_at(1));  // protocol events always pass
  EXPECT_EQ(sink.size(), 2u);
}

// ---- deterministic export + replay -----------------------------------------

std::string run_and_export(std::uint64_t seed) {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = seed;
  options.trace_messages = true;
  Cluster cluster(options);
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  cluster.merge();
  cluster.settle();
  return trace_to_json(cluster.trace_meta(), cluster.sim().trace()).dump();
}

TEST(TraceExportTest, SameSeedProducesByteIdenticalTraces) {
  const std::string a = run_and_export(1234);
  const std::string b = run_and_export(1234);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(TraceExportTest, DifferentSeedsProduceDifferentTraces) {
  EXPECT_NE(run_and_export(1234), run_and_export(1235));
}

TEST(TraceExportTest, JsonRoundTripPreservesEvents) {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = 77;
  options.trace_messages = true;
  Cluster cluster(options);
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();

  const JsonValue exported =
      trace_to_json(cluster.trace_meta(), cluster.sim().trace());
  const TraceMetaAndEvents loaded = load_trace_json(exported.dump());

  const auto& original = cluster.sim().trace().events();
  ASSERT_EQ(loaded.events.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.events[i], original[i]) << "event " << i;
  }
  EXPECT_EQ(loaded.meta.core, cluster.core());
  EXPECT_EQ(loaded.meta.protocol, "dv-optimized");
  EXPECT_EQ(loaded.meta.ambiguity_bound, 5u);  // n=5, Min_Quorum=1
}

TEST(TraceReplayTest, CleanRunReverifiesC1AndAmbiguityBound) {
  // A full scenario exported to JSON and replayed from the text alone.
  const std::string exported = run_and_export(42);
  const TraceCheckResult verdict = check_trace(load_trace_json(exported));
  EXPECT_TRUE(verdict.consistent()) << to_string(verdict.violations);
  EXPECT_GT(verdict.formed_sessions, 0u);
  EXPECT_GT(verdict.attempts, 0u);
  EXPECT_EQ(verdict.ambiguity_bound, 5u);
  EXPECT_LE(verdict.max_ambiguous, verdict.ambiguity_bound);
}

TEST(TraceReplayTest, DetectsSplitBrainOfNaiveProtocolFromTraceAlone) {
  // The E1 scenario: the naive protocol ends with two live primaries.
  ClusterOptions options;
  options.kind = ProtocolKind::kNaiveDynamic;
  options.n = 5;
  options.sim.seed = 2026;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.info", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();

  const std::string exported =
      trace_to_json(cluster.trace_meta(), cluster.sim().trace()).dump();
  const TraceCheckResult verdict = check_trace(load_trace_json(exported));
  bool split_brain = false;
  for (const Violation& v : verdict.violations) {
    split_brain |= v.kind == "split-brain";
  }
  EXPECT_TRUE(split_brain);
  // Replay reaches the same verdicts as the live checker.
  EXPECT_EQ(verdict.violations.size(), cluster.checker().check_all().size());
  EXPECT_EQ(verdict.formed_sessions, cluster.checker().formed_session_count());
}

TEST(TraceReplayTest, RingBoundedTraceStillReplaysRecentEvents) {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = 7;
  options.trace_capacity = 64;
  Cluster cluster(options);
  cluster.start();
  for (int i = 0; i < 6; ++i) {
    cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
    cluster.settle();
    cluster.merge();
    cluster.settle();
  }
  const obs::TraceSink& sink = cluster.sim().trace();
  EXPECT_LE(sink.size(), 64u);
  EXPECT_GT(sink.overwritten(), 0u);
  const TraceMetaAndEvents loaded =
      load_trace_json(trace_to_json(cluster.trace_meta(), sink).dump());
  EXPECT_EQ(loaded.meta.overwritten, sink.overwritten());

  // A truncated trace is only a suffix of the execution, so the default
  // policy refuses to certify it.
  const TraceCheckResult strict = check_trace(loaded);
  EXPECT_TRUE(strict.truncated);
  EXPECT_FALSE(strict.consistent());
  ASSERT_FALSE(strict.violations.empty());
  EXPECT_EQ(strict.violations.front().kind, "truncated-trace");

  // Explicitly downgrading to a warning still replays the surviving
  // events (C1 holds on the suffix; the bound check is unaffected).
  const TraceCheckResult lenient =
      check_trace(loaded, TruncationPolicy::kWarn);
  EXPECT_TRUE(lenient.truncated);
  EXPECT_TRUE(lenient.ambiguity_ok);
  for (const Violation& v : lenient.violations) {
    EXPECT_NE(v.kind, "truncated-trace");
  }
}

TEST(MetricsIntegrationTest, ClusterPopulatesSessionAndNetworkCounters) {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = 5;
  Cluster cluster(options);
  cluster.start();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();

  const obs::MetricsRegistry& metrics = cluster.sim().metrics();
  EXPECT_GT(metrics.counter_value("dv.formed"), 0u);
  EXPECT_GT(metrics.counter_value("dv.attempts"), 0u);
  EXPECT_GT(metrics.counter_value("net.messages_sent"), 0u);
  EXPECT_GT(metrics.counter_value("net.messages_delivered"), 0u);
  EXPECT_GT(metrics.counter_value("net.topology_changes"), 0u);
  // The registry and the stats() snapshot agree.
  EXPECT_EQ(metrics.counter_value("net.messages_sent"),
            cluster.sim().network().stats().messages_sent);
  // The dv gauge saw the ambiguous-record level.
  const auto& gauges = cluster.sim().metrics().gauges();
  ASSERT_TRUE(gauges.contains("dv.ambiguous_recorded"));
}

}  // namespace
}  // namespace dynvote
