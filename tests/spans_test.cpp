// Unit tests: the causal span layer (obs/spans.hpp) — span building,
// causal chains, trace-derived metrics vs. the live registry, Chrome
// export determinism, and the trace sink's registry gauges.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "harness/trace_replay.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace dynvote {
namespace {

using obs::TraceEvent;
using obs::TraceEventKind;

/// The E1 scenario of bench_scenario_typical: p2 misses the closing
/// attempt round of the {p0,p1,p2} session, then the partition shifts to
/// {p0,p1} | {p2,p3,p4}. Optionally heals at the end so the section-5
/// resolution rules get to fire.
struct E1Run {
  std::unique_ptr<Cluster> cluster;
  TraceMetaAndEvents trace;
};

E1Run run_e1(ProtocolKind kind, std::uint64_t seed, bool heal) {
  ClusterOptions options;
  options.kind = kind;
  options.n = 5;
  options.sim.seed = seed;
  options.trace_messages = true;
  auto cluster = std::make_unique<Cluster>(options);

  FaultInjector faults(cluster->sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster->partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster->settle();
  faults.clear();
  cluster->partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster->settle();
  if (heal) {
    cluster->merge();
    cluster->settle();
  }

  E1Run run;
  run.trace = load_trace_json(
      trace_to_json(cluster->trace_meta(), cluster->sim().trace()).dump());
  run.cluster = std::move(cluster);
  return run;
}

TEST(SpansTest, SameSeedProducesByteIdenticalSpanAndChromeJson) {
  const E1Run a = run_e1(ProtocolKind::kOptimized, 2026, /*heal=*/true);
  const E1Run b = run_e1(ProtocolKind::kOptimized, 2026, /*heal=*/true);

  const obs::SpanReport report_a = obs::build_spans(a.trace.events);
  const obs::SpanReport report_b = obs::build_spans(b.trace.events);
  EXPECT_EQ(obs::spans_to_json(report_a).dump(),
            obs::spans_to_json(report_b).dump());
  EXPECT_EQ(obs::chrome_trace_json(a.trace.meta, a.trace.events, report_a)
                .dump(),
            obs::chrome_trace_json(b.trace.meta, b.trace.events, report_b)
                .dump());
  EXPECT_FALSE(report_a.sessions.empty());
  EXPECT_FALSE(report_a.ambiguity.empty());
  EXPECT_FALSE(report_a.primaries.empty());
}

TEST(SpansTest, ExplainAbortChainRootsAtInjectedPartition) {
  const E1Run run = run_e1(ProtocolKind::kOptimized, 2026, /*heal=*/false);

  // The {p2,p3,p4} component must reject its session: p2's ambiguous
  // record of {p0,p1,p2} blocks it.
  const TraceEvent* abort_event = nullptr;
  for (const TraceEvent& event : run.trace.events) {
    if (event.kind == TraceEventKind::kSessionAbort &&
        event.members == ProcessSet::of({2, 3, 4})) {
      abort_event = &event;
    }
  }
  ASSERT_NE(abort_event, nullptr);

  const auto chain = obs::causal_chain(run.trace.events, abort_event->eid);
  ASSERT_GE(chain.size(), 3u);
  EXPECT_EQ(chain.back(), abort_event);
  // abort -> (view install) -> ... -> the injected topology change.
  EXPECT_EQ(chain.front()->kind, TraceEventKind::kTopologyChange);
  EXPECT_EQ(chain.front()->cause, 0u);
  bool has_view_install = false;
  for (const TraceEvent* event : chain) {
    has_view_install |= event->kind == TraceEventKind::kViewInstalled;
  }
  EXPECT_TRUE(has_view_install);
}

TEST(SpansTest, AmbiguityLifetimesRespectTheoremOneBound) {
  const E1Run run = run_e1(ProtocolKind::kOptimized, 2026, /*heal=*/true);
  const obs::SpanReport report = obs::build_spans(run.trace.events);

  ASSERT_EQ(run.trace.meta.ambiguity_bound, 5u);  // n=5, Min_Quorum=1
  EXPECT_LE(report.derived.max_open_ambiguity,
            run.trace.meta.ambiguity_bound);
  EXPECT_LE(report.derived.max_ambiguity_level,
            run.trace.meta.ambiguity_bound);

  // p2 recorded the {p0,p1,p2} attempt it never saw form.
  bool p2_recorded = false;
  for (const auto& span : report.ambiguity) {
    p2_recorded |= span.process == ProcessId(2) &&
                   span.members == ProcessSet::of({0, 1, 2});
  }
  EXPECT_TRUE(p2_recorded);
}

TEST(SpansTest, HealingResolvesAmbiguityByAdoption) {
  const E1Run run = run_e1(ProtocolKind::kOptimized, 2026, /*heal=*/true);
  const obs::SpanReport report = obs::build_spans(run.trace.events);

  // After the heal, p2 learns from Last_Formed gossip that {p0,p1,p2}
  // was formed by a member and adopts it (paper figure 2).
  bool adopted = false;
  for (const auto& span : report.ambiguity) {
    if (span.process == ProcessId(2) &&
        span.members == ProcessSet::of({0, 1, 2})) {
      adopted |= span.adopted && span.resolution == "fig2-adoption";
    }
  }
  EXPECT_TRUE(adopted);
  // Every closure carries a resolution from the documented vocabulary.
  const std::set<std::string> known{
      "formed",        "overwritten",
      "fig2-adoption", "fig2-adoption-supersedes",
      "5.2-rule1-unformed-by-all", "5.2-rule2-formed-by-nobody",
      "disk-loss",     "open"};
  for (const auto& span : report.ambiguity) {
    EXPECT_TRUE(known.contains(span.resolution))
        << "unknown resolution: " << span.resolution;
  }
}

TEST(SpansTest, DiskLossClosesAmbiguitySpans) {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = 91;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();

  cluster.sim().crash_and_destroy_disk(ProcessId(2));
  cluster.settle();
  cluster.recover(ProcessId(2));
  cluster.settle();

  const TraceMetaAndEvents trace = load_trace_json(
      trace_to_json(cluster.trace_meta(), cluster.sim().trace()).dump());
  const obs::SpanReport report = obs::build_spans(trace.events);
  bool disk_loss = false;
  for (const auto& span : report.ambiguity) {
    if (span.process == ProcessId(2)) {
      disk_loss |= span.resolution == "disk-loss";
    }
  }
  EXPECT_TRUE(disk_loss);
}

TEST(SpansTest, TraceDerivedMetricsMatchLiveRegistry) {
  for (const ProtocolKind kind :
       {ProtocolKind::kOptimized, ProtocolKind::kBasic,
        ProtocolKind::kCentralized, ProtocolKind::kNaiveDynamic}) {
    ClusterOptions options;
    options.kind = kind;
    options.n = 5;
    options.sim.seed = 17;
    Cluster cluster(options);
    cluster.start();
    for (int i = 0; i < 3; ++i) {
      cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
      cluster.settle();
      cluster.crash(ProcessId(1));
      cluster.settle();
      cluster.recover(ProcessId(1));
      cluster.merge();
      cluster.settle();
    }

    const TraceMetaAndEvents trace = load_trace_json(
        trace_to_json(cluster.trace_meta(), cluster.sim().trace()).dump());
    const obs::SpanReport report = obs::build_spans(trace.events);
    const auto mismatches =
        obs::cross_check_with_registry(report, cluster.sim().metrics());
    EXPECT_TRUE(mismatches.empty())
        << to_string(kind) << ": " << mismatches.front();

    // The derived numbers are not vacuous: the protocols form primaries
    // and spend most of the run with one live.
    EXPECT_GT(report.derived.formed, 0u) << to_string(kind);
    EXPECT_GT(report.derived.primary_uptime_ticks, 0u) << to_string(kind);
    EXPECT_GT(report.derived.primary_availability(), 0.0) << to_string(kind);
    EXPECT_LE(report.derived.primary_uptime_ticks, report.derived.horizon)
        << to_string(kind);
  }
}

TEST(SpansTest, CausalLinksAreWellFormed) {
  const E1Run run = run_e1(ProtocolKind::kOptimized, 2026, /*heal=*/true);

  std::set<std::uint64_t> eids;
  std::uint64_t previous = 0;
  for (const TraceEvent& event : run.trace.events) {
    // Ids are dense and strictly increasing in an unbounded sink.
    EXPECT_EQ(event.eid, previous + 1);
    previous = event.eid;
    eids.insert(event.eid);
  }
  for (const TraceEvent& event : run.trace.events) {
    if (event.cause == 0) continue;
    // Causes precede their effects and resolve within the trace.
    EXPECT_LT(event.cause, event.eid);
    EXPECT_TRUE(eids.contains(event.cause));
  }
  // Deliveries cite their send and advance the receiver's Lamport clock
  // past the sender's.
  std::size_t delivers = 0;
  for (const TraceEvent& event : run.trace.events) {
    if (event.kind != TraceEventKind::kMessageDeliver) continue;
    ASSERT_NE(event.cause, 0u);
    const TraceEvent& send = run.trace.events[event.cause - 1];
    ASSERT_EQ(send.kind, TraceEventKind::kMessageSend);
    EXPECT_EQ(send.a, event.a);
    EXPECT_EQ(send.b, event.b);
    EXPECT_GT(event.lamport, send.lamport);
    ++delivers;
  }
  EXPECT_GT(delivers, 0u);
}

TEST(SpansTest, TraceSinkGaugesMirrorSinkState) {
  const E1Run run = run_e1(ProtocolKind::kOptimized, 2026, /*heal=*/true);
  const obs::TraceSink& sink = run.cluster->sim().trace();
  const auto& gauges = run.cluster->sim().metrics().gauges();
  ASSERT_TRUE(gauges.contains("trace.events"));
  ASSERT_TRUE(gauges.contains("trace.overwritten"));
  EXPECT_EQ(gauges.at("trace.events").value(),
            static_cast<std::int64_t>(sink.size()));
  EXPECT_EQ(gauges.at("trace.overwritten").value(),
            static_cast<std::int64_t>(sink.overwritten()));
  EXPECT_EQ(sink.overwritten(), 0u);  // unbounded sink in this scenario
}

}  // namespace
}  // namespace dynvote
