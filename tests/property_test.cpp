// Property-based tests: randomized failure schedules, swept over seeds
// and protocols with parameterized gtest. Each run checks the paper's
// invariants end to end:
//
//   * no split brain, unique formed session numbers (Lemma 10);
//   * ≺ totality on formed sessions (Theorem 2) where affordable;
//   * per-process session numbers monotonically increase (Lemmas 1/3);
//   * the optimized protocol's ambiguity bound (Theorem 1);
//   * liveness: a fully healed system re-forms a primary;
//   * the replicated store never diverges under a consistent protocol;
//   * the deliberately broken baselines DO violate on adversarial
//     message-loss schedules (negative control).
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "app/replicated_kv.hpp"
#include "dv/basic_protocol.hpp"
#include "harness/availability.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"
#include "harness/schedule.hpp"

namespace dynvote {
namespace {

/// Observer asserting Lemma 1/3: each process's attempted session
/// numbers strictly increase.
class MonotonicityObserver final : public ProtocolObserver {
 public:
  void on_attempt(SimTime, ProcessId p, const Session& session) override {
    auto [it, inserted] = last_.try_emplace(p, session.number);
    if (!inserted) {
      EXPECT_GT(session.number, it->second)
          << to_string(p) << " attempted non-increasing session numbers";
      it->second = session.number;
    }
  }

 private:
  std::map<ProcessId, SessionNumber> last_;
};

class RandomScheduleProperty
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, std::uint64_t>> {
};

TEST_P(RandomScheduleProperty, InvariantsHoldAndHealedSystemRecovers) {
  const auto [kind, seed] = GetParam();
  const std::uint32_t n = 5 + seed % 3;  // 5..7 processes

  ScheduleOptions schedule_options;
  schedule_options.seed = seed * 7919 + 13;
  schedule_options.duration = 1'200'000;
  schedule_options.mean_event_gap = 45'000;
  const auto schedule =
      generate_schedule(ProcessSet::range(n), schedule_options);

  ClusterOptions options;
  options.kind = kind;
  options.n = n;
  options.config.min_quorum = 1 + seed % 2;
  options.sim.seed = seed;
  Cluster cluster(options);

  MonotonicityObserver monotonic;
  // Wire the extra observer into every protocol instance alongside the
  // checker: protocols only hold one observer, so go through a fan-out.
  MultiObserver fanout;
  fanout.add(&cluster.checker());
  fanout.add(&monotonic);
  for (ProcessId p : cluster.all_processes()) {
    cluster.protocol(p).set_observer(&fanout);
  }

  for (const ScheduleEvent& event : schedule) {
    cluster.sim().queue().schedule_at(event.time, [&cluster, &event] {
      switch (event.kind) {
        case ScheduleEvent::Kind::kPartition:
          cluster.partition(event.groups);
          break;
        case ScheduleEvent::Kind::kMerge: {
          ProcessSet merged;
          for (const auto& g : event.groups) merged = merged.set_union(g);
          cluster.partition({merged});
          break;
        }
        case ScheduleEvent::Kind::kCrash:
          cluster.crash(event.process);
          break;
        case ScheduleEvent::Kind::kRecover:
          cluster.recover(event.process);
          break;
      }
    });
  }
  cluster.merge();
  cluster.settle();

  // Safety.
  const auto violations = cluster.checker().check_basic();
  EXPECT_TRUE(violations.empty())
      << to_string(kind) << " seed " << seed << ":\n" << to_string(violations);
  if (cluster.checker().formed_session_count() <= 200) {
    const auto order = cluster.checker().check_order();
    EXPECT_TRUE(order.empty())
        << to_string(kind) << " seed " << seed << ":\n" << to_string(order);
  }

  // Theorem 1 bound (any dv-family protocol with full recording).
  if (kind == ProtocolKind::kOptimized) {
    for (ProcessId p : cluster.all_processes()) {
      const auto& dv = dynamic_cast<const BasicDvProtocol&>(cluster.protocol(p));
      EXPECT_LE(dv.max_ambiguous_recorded(),
                n - options.config.min_quorum + 1)
          << "Theorem 1 violated at " << to_string(p) << " seed " << seed;
    }
  }

  // Liveness: heal everything and expect a primary.
  for (ProcessId p : cluster.all_processes()) {
    if (!cluster.sim().network().alive(p)) cluster.recover(p);
  }
  cluster.merge();
  cluster.settle();
  EXPECT_TRUE(cluster.live_primary().has_value())
      << to_string(kind) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    ConsistentProtocols, RandomScheduleProperty,
    ::testing::Combine(
        ::testing::Values(ProtocolKind::kBasic, ProtocolKind::kOptimized,
                          ProtocolKind::kCentralized,
                          ProtocolKind::kBlockingDynamic,
                          ProtocolKind::kThreePhaseRecovery),
        ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// Hybrid runs with Min_Quorum pinned to 1 (its floor rule replaces the
// Min_Quorum mechanism), so it gets its own instantiation.
class HybridScheduleProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HybridScheduleProperty, HybridStaysConsistentOnRandomSchedules) {
  const std::uint64_t seed = GetParam();
  ScheduleOptions schedule_options;
  schedule_options.seed = seed * 104729 + 7;
  schedule_options.duration = 1'000'000;
  const auto schedule = generate_schedule(ProcessSet::range(5), schedule_options);
  ClusterOptions options;
  options.kind = ProtocolKind::kHybridJm;
  options.n = 5;
  options.sim.seed = seed;
  const auto result = run_schedule(ProtocolKind::kHybridJm, schedule, options);
  EXPECT_EQ(result.violations, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridScheduleProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---- Adversarial message loss on top of random schedules -------------------

// Drops a fraction of protocol messages (never self-deliveries) — the
// environment in which attempts go ambiguous constantly. The consistent
// protocols must shrug it off; the broken ones must eventually split.
class LossyScheduleProperty
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, std::uint64_t>> {
 public:
  /// Returns the number of basic violations observed.
  static std::size_t run_lossy(ProtocolKind kind, std::uint64_t seed) {
    ScheduleOptions schedule_options;
    schedule_options.seed = seed * 31 + 1;
    schedule_options.duration = 1'000'000;
    schedule_options.mean_event_gap = 35'000;
    const auto schedule =
        generate_schedule(ProcessSet::range(5), schedule_options);

    ClusterOptions options;
    options.kind = kind;
    options.n = 5;
    options.sim.seed = seed;
    Cluster cluster(options);

    Rng drop_rng(seed ^ 0xD1CEu);
    cluster.sim().network().set_drop_filter(
        [&drop_rng](const sim::Envelope& env) {
          if (env.from == env.to) return false;
          return drop_rng.next_bool(0.12);
        });

    for (const ScheduleEvent& event : schedule) {
      cluster.sim().queue().schedule_at(event.time, [&cluster, &event] {
        switch (event.kind) {
          case ScheduleEvent::Kind::kPartition:
            cluster.partition(event.groups);
            break;
          case ScheduleEvent::Kind::kMerge: {
            ProcessSet merged;
            for (const auto& g : event.groups) merged = merged.set_union(g);
            cluster.partition({merged});
            break;
          }
          case ScheduleEvent::Kind::kCrash:
            cluster.crash(event.process);
            break;
          case ScheduleEvent::Kind::kRecover:
            cluster.recover(event.process);
            break;
        }
      });
    }
    cluster.merge();
    cluster.settle();
    return cluster.checker().check_basic().size();
  }
};

TEST_P(LossyScheduleProperty, ConsistentProtocolsSurviveMessageLoss) {
  const auto [kind, seed] = GetParam();
  EXPECT_EQ(run_lossy(kind, seed), 0u)
      << to_string(kind) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    UnderLoss, LossyScheduleProperty,
    ::testing::Combine(
        ::testing::Values(ProtocolKind::kBasic, ProtocolKind::kOptimized,
                          ProtocolKind::kCentralized,
                          ProtocolKind::kBlockingDynamic,
                          ProtocolKind::kHybridJm,
                          ProtocolKind::kThreePhaseRecovery),
        ::testing::Values(11u, 12u, 13u, 14u)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(LossyNegativeControl, NaiveBaselineViolatesSomewhere) {
  // Negative control for the whole measurement apparatus: across a sweep
  // of lossy executions the naive baseline must produce at least one
  // consistency violation (otherwise the checker or the fault model is
  // toothless). The last-attempt-only baseline needs the paper's precise
  // double-failure interleaving, reproduced deterministically in
  // scenario_paper_test.cpp.
  std::size_t naive_violations = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    naive_violations +=
        LossyScheduleProperty::run_lossy(ProtocolKind::kNaiveDynamic, seed);
  }
  EXPECT_GT(naive_violations, 0u);
}

// ---- Section-6 dynamic participants under random churn ---------------------

class DynamicJoinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicJoinProperty, JoinsUnderChurnKeepEveryInvariant) {
  const std::uint64_t seed = GetParam();
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 3;
  options.config.min_quorum = 2;
  options.config.dynamic_participants = true;
  options.sim.seed = seed;
  Cluster cluster(options);
  cluster.start();

  Rng rng(seed * 613 + 3);
  std::uint32_t next_joiner = 3;
  ProcessSet everyone = ProcessSet::range(3);

  // Interleave joins with random bipartitions and heals.
  for (int round = 0; round < 12; ++round) {
    const double dice = rng.next_double();
    if (dice < 0.4 && next_joiner < 12) {
      cluster.add_process(ProcessId(next_joiner));
      everyone.insert(ProcessId(next_joiner));
      ++next_joiner;
      cluster.merge();
    } else if (dice < 0.75) {
      ProcessSet half;
      for (ProcessId p : everyone) {
        if (rng.next_bool(0.5)) half.insert(p);
      }
      if (!half.empty() && half.size() < everyone.size()) {
        cluster.partition({half, everyone.set_difference(half)});
      }
    } else {
      cluster.merge();
    }
    cluster.settle();

    // Cross-process sanity on top of the tracker's internal Lemma-12
    // enforcement: every W only ever names processes that exist.
    for (ProcessId p : cluster.all_processes()) {
      const auto& dv =
          dynamic_cast<const BasicDvProtocol&>(cluster.protocol(p));
      EXPECT_TRUE(dv.state().participants.admitted().is_subset_of(everyone))
          << to_string(p) << " seed " << seed;
    }
  }

  cluster.merge();
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value()) << "seed " << seed;
  EXPECT_EQ(cluster.live_primary()->members, everyone) << "seed " << seed;
  const auto violations = cluster.checker().check_all();
  EXPECT_TRUE(violations.empty()) << "seed " << seed << "\n"
                                  << to_string(violations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicJoinProperty,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u, 36u));

// ---- Replicated store under churn ------------------------------------------

class KvChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvChurnProperty, StoreNeverDivergesUnderConsistentProtocol) {
  const std::uint64_t seed = GetParam();
  ScheduleOptions schedule_options;
  schedule_options.seed = seed * 3331;
  schedule_options.duration = 900'000;
  const auto schedule = generate_schedule(ProcessSet::range(5), schedule_options);

  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = seed;
  Cluster cluster(options);
  app::KvStore store(cluster);

  for (const ScheduleEvent& event : schedule) {
    cluster.sim().queue().schedule_at(event.time, [&cluster, &event] {
      switch (event.kind) {
        case ScheduleEvent::Kind::kPartition:
          cluster.partition(event.groups);
          break;
        case ScheduleEvent::Kind::kMerge: {
          ProcessSet merged;
          for (const auto& g : event.groups) merged = merged.set_union(g);
          cluster.partition({merged});
          break;
        }
        case ScheduleEvent::Kind::kCrash:
          cluster.crash(event.process);
          break;
        case ScheduleEvent::Kind::kRecover:
          cluster.recover(event.process);
          break;
      }
    });
  }
  // Periodic writes from every process, racing the failures.
  int counter = 0;
  for (SimTime t = 30'000; t < schedule_options.duration; t += 60'000) {
    cluster.sim().queue().schedule_at(t, [&cluster, &store, &counter] {
      for (ProcessId p : cluster.all_processes()) {
        if (!cluster.sim().network().alive(p)) continue;
        store.write(p, "key" + std::to_string(counter % 3),
                    "value" + std::to_string(counter));
        ++counter;
      }
      store.sync_primary();
    });
  }
  cluster.merge();
  cluster.settle();
  store.sync_primary();

  const auto divergences = store.audit();
  EXPECT_TRUE(divergences.empty()) << "seed " << seed << ": " <<
      (divergences.empty() ? "" : divergences.front().detail);
  EXPECT_EQ(cluster.checker().check_basic().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvChurnProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));

}  // namespace
}  // namespace dynvote
