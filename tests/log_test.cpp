// Integration tests: the replicated totally-ordered log on the
// primary-component service.
#include <gtest/gtest.h>

#include "app/replicated_log.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"

namespace dynvote::app {
namespace {

ClusterOptions options_for(ProtocolKind kind, std::uint64_t seed = 71) {
  ClusterOptions options;
  options.kind = kind;
  options.n = 5;
  options.sim.seed = seed;
  return options;
}

TEST(LogPosition, OrdersByEpochThenIndex) {
  EXPECT_LT((LogPosition{1, 9}), (LogPosition{2, 0}));
  EXPECT_LT((LogPosition{2, 0}), (LogPosition{2, 1}));
  EXPECT_EQ((LogPosition{3, 4}).to_string(), "(3:4)");
}

TEST(ReplicatedLog, AppendsOnlyInsidePrimary) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  ReplicatedLog log(cluster);
  EXPECT_TRUE(log.append(ProcessId(0), "a").has_value());
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  EXPECT_TRUE(log.append(ProcessId(1), "b").has_value());
  EXPECT_FALSE(log.append(ProcessId(4), "x").has_value());
  EXPECT_EQ(log.accepted_appends(), 2u);
}

TEST(ReplicatedLog, IndexesAdvanceWithinAnEpoch) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  ReplicatedLog log(cluster);
  const auto p1 = log.append(ProcessId(0), "a");
  const auto p2 = log.append(ProcessId(1), "b");
  const auto p3 = log.append(ProcessId(0), "c");
  ASSERT_TRUE(p1 && p2 && p3);
  EXPECT_EQ(p1->epoch, p2->epoch);
  EXPECT_LT(*p1, *p2);
  EXPECT_LT(*p2, *p3);
}

TEST(ReplicatedLog, EpochsAdvanceAcrossPrimaries) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  ReplicatedLog log(cluster);
  const auto before = log.append(ProcessId(0), "old");
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  const auto after = log.append(ProcessId(0), "new");
  ASSERT_TRUE(before && after);
  EXPECT_LT(before->epoch, after->epoch);
  EXPECT_EQ(after->index, 0u);  // fresh epoch starts at zero
}

TEST(ReplicatedLog, SyncBringsReplicasToSamePrefix) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  ReplicatedLog log(cluster);
  log.append(ProcessId(0), "a");
  log.append(ProcessId(2), "b");
  log.sync_primary();
  for (std::uint32_t p = 0; p < 5; ++p) {
    ASSERT_EQ(log.replica(ProcessId(p)).size(), 2u) << "p" << p;
    EXPECT_EQ(log.replica(ProcessId(p)).entries()[0].payload, "a");
    EXPECT_EQ(log.replica(ProcessId(p)).entries()[1].payload, "b");
  }
  EXPECT_TRUE(log.audit().empty());
}

TEST(ReplicatedLog, MinorityCatchesUpAfterHeal) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  cluster.start();
  ReplicatedLog log(cluster);
  log.append(ProcessId(0), "a");
  log.sync_primary();
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  log.append(ProcessId(0), "b");
  log.append(ProcessId(1), "c");
  log.sync_primary();
  EXPECT_EQ(log.replica(ProcessId(4)).size(), 1u);  // stale
  cluster.merge();
  cluster.settle();
  log.sync_primary();
  EXPECT_EQ(log.replica(ProcessId(4)).size(), 3u);
  EXPECT_TRUE(log.audit().empty());
}

TEST(ReplicatedLog, ConsistentUnderRepeatedChurn) {
  Cluster cluster(options_for(ProtocolKind::kOptimized, 73));
  cluster.start();
  ReplicatedLog log(cluster);
  int n = 0;
  for (int round = 0; round < 6; ++round) {
    for (std::uint32_t p = 0; p < 5; ++p) {
      log.append(ProcessId(p), "m" + std::to_string(n++));
    }
    log.sync_primary();
    cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
    cluster.settle();
    for (std::uint32_t p = 0; p < 5; ++p) {
      log.append(ProcessId(p), "m" + std::to_string(n++));
    }
    log.sync_primary();
    cluster.merge();
    cluster.settle();
  }
  log.sync_primary();
  EXPECT_TRUE(log.audit().empty());
  // Every replica inside the final primary holds the identical log.
  const auto& reference = log.replica(ProcessId(0)).entries();
  for (std::uint32_t p = 1; p < 5; ++p) {
    EXPECT_EQ(log.replica(ProcessId(p)).entries(), reference) << "p" << p;
  }
  EXPECT_GT(log.accepted_appends(), 0u);
}

TEST(ReplicatedLog, NaiveSplitBrainProducesConflictingAppends) {
  Cluster cluster(options_for(ProtocolKind::kNaiveDynamic));
  ReplicatedLog log(cluster);
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.info", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  ASSERT_TRUE(log.append(ProcessId(0), "left").has_value());
  ASSERT_TRUE(log.append(ProcessId(2), "right").has_value());
  EXPECT_FALSE(log.audit().empty());
}

TEST(ReplicatedLog, OurProtocolSameScenarioStaysClean) {
  Cluster cluster(options_for(ProtocolKind::kOptimized));
  ReplicatedLog log(cluster);
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  ASSERT_TRUE(log.append(ProcessId(0), "left").has_value());
  EXPECT_FALSE(log.append(ProcessId(2), "right").has_value());
  EXPECT_TRUE(log.audit().empty());
}

}  // namespace
}  // namespace dynvote::app
