// Unit tests: the membership oracle — eventual agreement in stable
// components, non-atomic delivery, view suppression under churn, views
// on crash/recovery, injected (inaccurate) views.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "membership/membership_oracle.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace dynvote {
namespace {

class ViewWatcher : public sim::Node {
 public:
  using sim::Node::Node;
  std::vector<View> views;

 protected:
  void on_view(const View& view) override { views.push_back(view); }
  void on_message(ProcessId, const sim::PayloadPtr&) override {}
};

class MembershipTest : public ::testing::Test {
 protected:
  MembershipTest() {
    for (std::uint32_t i = 0; i < 5; ++i) {
      auto node = std::make_unique<ViewWatcher>(sim_, ProcessId(i));
      nodes_.push_back(node.get());
      sim_.add_node(std::move(node));
    }
    oracle_ = std::make_unique<MembershipOracle>(sim_);
  }

  ViewWatcher& node(std::uint32_t i) { return *nodes_[i]; }

  sim::Simulator sim_{sim::SimulatorOptions{.seed = 5, .latency = {}}};
  std::vector<ViewWatcher*> nodes_;
  std::unique_ptr<MembershipOracle> oracle_;
};

TEST_F(MembershipTest, StableComponentConvergesToOneView) {
  sim_.merge_all();
  sim_.run_to_quiescence();
  ASSERT_FALSE(node(0).views.empty());
  const View last = node(0).views.back();
  EXPECT_EQ(last.members, ProcessSet::range(5));
  for (std::uint32_t i = 1; i < 5; ++i) {
    ASSERT_FALSE(node(i).views.empty());
    EXPECT_EQ(node(i).views.back(), last) << "node " << i;
  }
}

TEST_F(MembershipTest, PartitionYieldsDistinctViewsPerComponent) {
  sim_.merge_all();
  sim_.run_to_quiescence();
  sim_.set_components({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  sim_.run_to_quiescence();
  EXPECT_EQ(node(0).views.back().members, ProcessSet::of({0, 1, 2}));
  EXPECT_EQ(node(1).views.back().members, ProcessSet::of({0, 1, 2}));
  EXPECT_EQ(node(3).views.back().members, ProcessSet::of({3, 4}));
  EXPECT_EQ(node(4).views.back().members, ProcessSet::of({3, 4}));
  EXPECT_EQ(node(0).views.back().id, node(2).views.back().id);
  EXPECT_NE(node(0).views.back().id, node(3).views.back().id);
}

TEST_F(MembershipTest, UntouchedComponentGetsNoSpuriousView) {
  sim_.set_components({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  sim_.run_to_quiescence();
  const std::size_t views_before = node(3).views.size();
  // Splitting the other component must not disturb {3,4}.
  sim_.set_components({ProcessSet::of({0, 1}), ProcessSet::of({2})});
  sim_.run_to_quiescence();
  EXPECT_EQ(node(3).views.size(), views_before);
}

TEST_F(MembershipTest, RapidChangesMaySkipIntermediateViews) {
  sim_.merge_all();
  // Before any delivery happens, split again: nodes may jump straight to
  // the final view. In all cases the FINAL view must be the true one.
  sim_.set_components({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  sim_.run_to_quiescence();
  EXPECT_EQ(node(0).views.back().members, ProcessSet::of({0, 1}));
  EXPECT_EQ(node(2).views.back().members, ProcessSet::of({2, 3, 4}));
  // Views ids observed by one process are strictly increasing.
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::size_t k = 1; k < node(i).views.size(); ++k) {
      EXPECT_LT(node(i).views[k - 1].id, node(i).views[k].id);
    }
  }
}

TEST_F(MembershipTest, CrashTriggersViewForSurvivors) {
  sim_.merge_all();
  sim_.run_to_quiescence();
  sim_.crash(ProcessId(4));
  sim_.run_to_quiescence();
  EXPECT_EQ(node(0).views.back().members, ProcessSet::of({0, 1, 2, 3}));
}

TEST_F(MembershipTest, RecoveredProcessGetsSingletonThenMergedView) {
  sim_.merge_all();
  sim_.run_to_quiescence();
  sim_.crash(ProcessId(4));
  sim_.run_to_quiescence();
  const std::size_t views_at_crash = node(4).views.size();
  sim_.recover(ProcessId(4));
  sim_.run_to_quiescence();
  ASSERT_GT(node(4).views.size(), views_at_crash);
  EXPECT_EQ(node(4).views.back().members, ProcessSet::of({4}));
  sim_.merge_all();
  sim_.run_to_quiescence();
  EXPECT_EQ(node(4).views.back().members, ProcessSet::range(5));
}

TEST_F(MembershipTest, InjectedViewReachesAllTargets) {
  sim_.merge_all();
  sim_.run_to_quiescence();
  // Deliberately inaccurate: claims {0,1} while all five are connected.
  oracle_->inject_view(ProcessSet::of({0, 1}));
  sim_.run_to_quiescence();
  EXPECT_EQ(node(0).views.back().members, ProcessSet::of({0, 1}));
  EXPECT_EQ(node(1).views.back().members, ProcessSet::of({0, 1}));
  EXPECT_EQ(node(2).views.back().members, ProcessSet::range(5));
}

TEST_F(MembershipTest, ViewIdsGloballyUnique) {
  sim_.merge_all();
  sim_.set_components({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  sim_.merge_all();
  sim_.run_to_quiescence();
  std::vector<std::pair<ViewId, ProcessSet>> seen;
  for (auto* n : nodes_) {
    for (const View& v : n->views) {
      for (const auto& [id, members] : seen) {
        if (id == v.id) {
          EXPECT_EQ(members, v.members);
        }
      }
      seen.emplace_back(v.id, v.members);
    }
  }
}

}  // namespace
}  // namespace dynvote
