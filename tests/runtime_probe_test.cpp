// Tests for the wall-clock probe layer of the thread runtime
// (src/obs/runtime_probe.*): the single-writer ring, the phase
// attribution of reconfiguration windows, the JSON document and its
// Chrome export, the per-lane metric aggregation, and the integration
// through RuntimeFleet — including the digest-neutrality contract
// (probes on or off, the protocol outcome is byte-identical) and the
// eventcount wakeup stress meant to run under TSan
// (tools/run_experiments.sh wires the Runtime* prefixes into its TSan
// pass).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/runtime_probe.hpp"
#include "runtime/crosscheck.hpp"
#include "runtime/eventcount.hpp"
#include "runtime/fleet.hpp"
#include "util/ensure.hpp"
#include "util/json.hpp"

namespace dynvote::obs {
namespace {

using runtime::FleetOptions;
using runtime::RuntimeFleet;

// ---------------------------------------------------------------- ring

TEST(RuntimeProbe, RingRoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(ProbeRing(0).capacity(), 16u);
  EXPECT_EQ(ProbeRing(16).capacity(), 16u);
  EXPECT_EQ(ProbeRing(17).capacity(), 32u);
  EXPECT_EQ(ProbeRing(1000).capacity(), 1024u);
}

TEST(RuntimeProbe, RingOverwritesOldestFirstAndCountsDrops) {
  ProbeRing ring(16);
  for (std::uint64_t i = 0; i < 40; ++i) {
    ring.record(ProbeKind::kLinkPush, /*t_ns=*/i, /*value=*/i * 10,
                /*link=*/static_cast<std::uint16_t>(i & 0xF), /*eid=*/i);
  }
  EXPECT_EQ(ring.recorded(), 40u);
  EXPECT_EQ(ring.dropped(), 24u);
  const std::vector<ProbeEntry> entries = ring.snapshot();
  ASSERT_EQ(entries.size(), 16u);
  // Oldest retained entry is #24, newest #39, strictly in order.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].t_ns, 24 + i);
    EXPECT_EQ(entries[i].value, (24 + i) * 10);
    EXPECT_EQ(entries[i].eid, 24 + i);
  }
}

TEST(RuntimeProbe, KindStringsRoundTrip) {
  for (const ProbeKind kind :
       {ProbeKind::kLinkPush, ProbeKind::kLinkPushFailed, ProbeKind::kLinkPop,
        ProbeKind::kControlPush, ProbeKind::kControlPop, ProbeKind::kParked,
        ProbeKind::kTimerSlop, ProbeKind::kWakeup, ProbeKind::kTimerSchedule,
        ProbeKind::kTimerFire, ProbeKind::kHandlerMessage,
        ProbeKind::kHandlerControl, ProbeKind::kHandlerTimer,
        ProbeKind::kBatch, ProbeKind::kRunQueue, ProbeKind::kHandoff}) {
    EXPECT_EQ(probe_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)probe_kind_from_string("no-such-kind"),
               InvariantViolation);
}

// -------------------------------------------------------- attribution

ProbeEntry entry(ProbeKind kind, std::uint64_t t_ns, std::uint64_t value) {
  ProbeEntry e{};  // value-init: the POD has no member initializers
  e.kind = kind;
  e.t_ns = t_ns;
  e.value = value;
  e.link = kNoLane;
  return e;
}

TEST(RuntimeProbe, AttributeWindowPartitionsWallExactly) {
  // Window [0, 1000): handler [100, 300), park [300, 600), pop at 700
  // with 50ns wait ([650, 700)), rest unattributed.
  const std::vector<ProbeEntry> entries = {
      entry(ProbeKind::kHandlerMessage, 100, 200),
      entry(ProbeKind::kParked, 300, 300),
      entry(ProbeKind::kLinkPop, 700, 50),
  };
  const PhaseBreakdown phases = attribute_window(entries, 0, 1000);
  EXPECT_EQ(phases.wall_ns, 1000u);
  EXPECT_EQ(phases.executing_ns, 200u);
  EXPECT_EQ(phases.parked_ns, 300u);
  EXPECT_EQ(phases.queued_ns, 50u);
  EXPECT_EQ(phases.timer_slop_ns, 0u);
  EXPECT_EQ(phases.unattributed_ns, 450u);
  EXPECT_EQ(phases.executing_ns + phases.parked_ns + phases.queued_ns +
                phases.timer_slop_ns + phases.unattributed_ns,
            phases.wall_ns);
}

TEST(RuntimeProbe, AttributeWindowAppliesPrecedenceOnOverlap) {
  // All four phases claim [0, 100): executing must win the whole span.
  const std::vector<ProbeEntry> overlap = {
      entry(ProbeKind::kParked, 0, 100),
      entry(ProbeKind::kLinkPop, 100, 100),  // queued [0, 100)
      entry(ProbeKind::kTimerSlop, 0, 100),
      entry(ProbeKind::kHandlerTimer, 0, 100),
  };
  PhaseBreakdown phases = attribute_window(overlap, 0, 100);
  EXPECT_EQ(phases.executing_ns, 100u);
  EXPECT_EQ(phases.timer_slop_ns, 0u);
  EXPECT_EQ(phases.queued_ns, 0u);
  EXPECT_EQ(phases.parked_ns, 0u);
  EXPECT_EQ(phases.unattributed_ns, 0u);

  // Without the handler, slop wins; without slop, queued; then parked.
  phases = attribute_window({overlap[0], overlap[1], overlap[2]}, 0, 100);
  EXPECT_EQ(phases.timer_slop_ns, 100u);
  phases = attribute_window({overlap[0], overlap[1]}, 0, 100);
  EXPECT_EQ(phases.queued_ns, 100u);
  phases = attribute_window({overlap[0]}, 0, 100);
  EXPECT_EQ(phases.parked_ns, 100u);
}

TEST(RuntimeProbe, AttributeWindowClipsIntervalsToTheWindow) {
  // Handler [50, 250) against window [100, 200): only 100ns count, and
  // an entry entirely outside contributes nothing.
  const std::vector<ProbeEntry> entries = {
      entry(ProbeKind::kHandlerMessage, 50, 200),
      entry(ProbeKind::kParked, 5000, 100),
  };
  const PhaseBreakdown phases = attribute_window(entries, 100, 200);
  EXPECT_EQ(phases.wall_ns, 100u);
  EXPECT_EQ(phases.executing_ns, 100u);
  EXPECT_EQ(phases.parked_ns, 0u);
  EXPECT_EQ(phases.unattributed_ns, 0u);
}

// ------------------------------------------------------------ document

RuntimeProbeDoc sample_doc() {
  ThreadProbeLog lane0;
  lane0.thread = 0;
  lane0.dropped = 3;
  lane0.entries = {
      entry(ProbeKind::kLinkPush, 100, 2),
      entry(ProbeKind::kLinkPushFailed, 150, 900),
      entry(ProbeKind::kHandlerMessage, 1200, 400),
      entry(ProbeKind::kParked, 1600, 2000),
      entry(ProbeKind::kWakeup, 3600, 120),
      entry(ProbeKind::kTimerFire, 5000, 40),
  };
  lane0.entries[0].link = 1;
  lane0.entries[0].eid = 7;
  ThreadProbeLog ctl;
  ctl.thread = kControllerLane;
  ctl.entries = {entry(ProbeKind::kControlPush, 90, 1)};
  ctl.entries[0].link = 0;

  ReconfigWindow window;
  window.verb = "partition";
  window.t0_ns = 100;
  window.t1_ns = 4000;
  window.critical_thread = 0;
  window.phases = attribute_window(lane0.entries, 100, 4000);

  RuntimeProbeDoc doc;
  doc.meta = {"dv-optimized", 4, 1024};
  doc.threads = {lane0, ctl};
  doc.reconfigs = {window};
  return doc;
}

TEST(RuntimeProbe, ProbeDocumentJsonRoundTrips) {
  const RuntimeProbeDoc doc = sample_doc();
  const JsonValue json =
      runtime_probes_json(doc.meta, doc.threads, doc.reconfigs);
  EXPECT_EQ(json.at("schema_version").as_uint(),
            static_cast<std::uint64_t>(kRuntimeProbeSchemaVersion));
  EXPECT_EQ(json.at("experiment").as_string(), "runtime_probes");

  const RuntimeProbeDoc loaded = load_runtime_probes(json.dump());
  EXPECT_EQ(loaded.meta.protocol, doc.meta.protocol);
  EXPECT_EQ(loaded.meta.n, doc.meta.n);
  EXPECT_EQ(loaded.meta.wheel_tick_us, doc.meta.wheel_tick_us);
  ASSERT_EQ(loaded.threads.size(), doc.threads.size());
  for (std::size_t i = 0; i < doc.threads.size(); ++i) {
    EXPECT_EQ(loaded.threads[i].thread, doc.threads[i].thread);
    EXPECT_EQ(loaded.threads[i].dropped, doc.threads[i].dropped);
    EXPECT_EQ(loaded.threads[i].entries, doc.threads[i].entries);
  }
  ASSERT_EQ(loaded.reconfigs.size(), 1u);
  EXPECT_EQ(loaded.reconfigs[0].verb, "partition");
  EXPECT_EQ(loaded.reconfigs[0].phases, doc.reconfigs[0].phases);
}

TEST(RuntimeProbe, LoaderRejectsSchemaMismatch) {
  const RuntimeProbeDoc doc = sample_doc();
  std::string text =
      runtime_probes_json(doc.meta, doc.threads, doc.reconfigs).dump();
  // JsonValue::set appends (at() reads the first match), so patch the
  // serialized text to fake a future schema version.
  const std::string needle =
      "\"schema_version\":" + std::to_string(kRuntimeProbeSchemaVersion);
  const std::size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"schema_version\":999");
  EXPECT_THROW((void)load_runtime_probes(text), InvariantViolation);
}

TEST(RuntimeProbe, ChromeExportIsWellFormed) {
  const JsonValue chrome = runtime_probe_chrome_json(sample_doc());
  EXPECT_EQ(chrome.at("displayTimeUnit").as_string(), "ns");
  const auto& events = chrome.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  std::vector<std::string> open_async;
  bool saw_slice = false;
  bool saw_instant = false;
  for (const JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string();
    (void)e.at("name").as_string();
    (void)e.at("pid").as_uint();
    if (ph != "M") (void)e.at("ts").as_uint();
    if (ph == "X") {
      (void)e.at("dur").as_uint();
      saw_slice = true;
    }
    if (ph == "i") saw_instant = true;
    if (ph == "b") open_async.push_back(e.at("id").as_string());
    if (ph == "e") {
      const auto it = std::find(open_async.begin(), open_async.end(),
                                e.at("id").as_string());
      ASSERT_NE(it, open_async.end());
      open_async.erase(it);
    }
  }
  EXPECT_TRUE(open_async.empty());  // every reconfig span is balanced
  EXPECT_TRUE(saw_slice);           // handlers / parks
  EXPECT_TRUE(saw_instant);         // backpressure / timer fire
}

TEST(RuntimeProbe, AggregatesPerLaneMetricsIntoHub) {
  const RuntimeProbeDoc doc = sample_doc();
  MetricsHub hub(doc.threads.size());
  aggregate_probe_metrics(doc.threads, hub);
  MetricsRegistry& lane0 = hub.group(0);
  EXPECT_EQ(lane0.counter_value("rt.probe.push"), 1u);
  EXPECT_EQ(lane0.counter_value("rt.probe.push_failed"), 1u);
  EXPECT_EQ(lane0.counter_value("rt.probe.parks"), 1u);
  EXPECT_EQ(lane0.counter_value("rt.probe.wakeups"), 1u);
  EXPECT_EQ(lane0.counter_value("rt.probe.handlers"), 1u);
  EXPECT_EQ(lane0.counter_value("rt.probe.dropped"), 3u);
  EXPECT_EQ(lane0.histogram("rt.probe.handler_ns").count(), 1u);
  EXPECT_EQ(lane0.histogram("rt.probe.park_ns").count(), 1u);
  MetricsRegistry& ctl = hub.group(1);
  EXPECT_EQ(ctl.counter_value("rt.probe.control_push"), 1u);
  // Rollup across lanes works unchanged on probe instruments.
  EXPECT_EQ(hub.rollup().counter_value("rt.probe.push"), 1u);
}

// Exported histograms carry the explicit unit metadata (telemetry
// schema v2): names ending in a unit suffix get a "unit" key.
TEST(RuntimeProbe, ExportedHistogramsCarryUnitMetadata) {
  const RuntimeProbeDoc doc = sample_doc();
  MetricsHub hub(doc.threads.size());
  aggregate_probe_metrics(doc.threads, hub);
  const JsonValue json = hub.group(0).to_json();
  EXPECT_EQ(json.at("histograms").at("rt.probe.handler_ns").at("unit")
                .as_string(),
            "ns");
  // No unit suffix -> no unit key.
  EXPECT_EQ(json.at("histograms").at("rt.probe.queue_depth").find("unit"),
            nullptr);
}

// ------------------------------------------------------------ integration

TEST(RuntimeProbe, FleetProbeLogsCaptureChurn) {
  FleetOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 4;
  options.runtime.probes = true;
  RuntimeFleet fleet(options);
  fleet.start();
  ProcessSet left;
  ProcessSet right;
  for (std::uint32_t i = 0; i < 2; ++i) left.insert(ProcessId(i));
  for (std::uint32_t i = 2; i < 4; ++i) right.insert(ProcessId(i));
  fleet.partition({left, right});
  fleet.merge();
  const std::vector<ThreadProbeLog> logs = fleet.probe_logs();
  fleet.stop();

  ASSERT_EQ(logs.size(), 5u);  // 4 process lanes + controller
  EXPECT_EQ(logs.back().thread, kControllerLane);
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t handlers = 0;
  bool saw_eid = false;
  for (const ThreadProbeLog& lane : logs) {
    for (const ProbeEntry& e : lane.entries) {
      pushes += e.kind == ProbeKind::kLinkPush ? 1 : 0;
      pops += e.kind == ProbeKind::kLinkPop ? 1 : 0;
      handlers += e.kind == ProbeKind::kHandlerMessage ? 1 : 0;
      saw_eid |= e.eid != 0;
    }
  }
  EXPECT_GT(pushes, 0u);
  EXPECT_GT(pops, 0u);
  EXPECT_GT(handlers, 0u);
  EXPECT_TRUE(saw_eid);  // entries join back into the causal trace
}

TEST(RuntimeProbe, FleetWithoutProbesReturnsNoLogs) {
  FleetOptions options;
  options.n = 3;
  RuntimeFleet fleet(options);
  fleet.start();
  EXPECT_TRUE(fleet.probe_logs().empty());
  fleet.stop();
}

// The digest-neutrality contract: the probed runtime makes exactly the
// protocol decisions the unprobed one (and the DES) makes.
TEST(RuntimeProbe, ProbesAreDigestNeutral) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const runtime::CrossCheckResult off =
        runtime::run_scenario(ProtocolKind::kOptimized, 4, seed);
    const runtime::CrossCheckResult on = runtime::run_scenario(
        ProtocolKind::kOptimized, 4, seed, 10, /*probes=*/true);
    EXPECT_TRUE(on.digests_equal) << "seed " << seed;
    EXPECT_EQ(on.runtime_digest, off.runtime_digest) << "seed " << seed;
  }
}

// ---------------------------------------------------------- eventcount

// Wakeup stress across >= 4 threads, meant for the TSan pass: heavy
// topology churn forces the park/notify edge constantly. Every verb
// runs to quiescence, so merely completing proves no wakeup was lost
// (a lost wakeup leaves a thread parked with work pending and the
// quiesce barrier never closes); the probe rings then bound the
// observed notify-to-running latency.
TEST(RuntimeEventcount, ChurnHasNoLostWakeupsAndBoundedLatency) {
  FleetOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 4;
  options.runtime.probes = true;
  RuntimeFleet fleet(options);
  fleet.start();
  ProcessSet left;
  ProcessSet right;
  for (std::uint32_t i = 0; i < 2; ++i) left.insert(ProcessId(i));
  for (std::uint32_t i = 2; i < 4; ++i) right.insert(ProcessId(i));
  for (int round = 0; round < 5; ++round) {
    fleet.partition({left, right});
    fleet.merge();
    fleet.crash(ProcessId(3));
    fleet.recover(ProcessId(3));
    fleet.merge();
  }
  const std::vector<ThreadProbeLog> logs = fleet.probe_logs();
  fleet.stop();

  std::uint64_t parks = 0;
  std::uint64_t wakeups = 0;
  for (const ThreadProbeLog& lane : logs) {
    for (const ProbeEntry& e : lane.entries) {
      if (e.kind == ProbeKind::kParked) ++parks;
      if (e.kind == ProbeKind::kWakeup) {
        ++wakeups;
        // Generous bound: the CI box is single-core, so a wakeup can
        // wait out several scheduler quanta — but never seconds.
        EXPECT_LT(e.value, 2'000'000'000u);
      }
    }
  }
  EXPECT_GT(parks, 0u);
  EXPECT_GT(wakeups, 0u);
}

// The pure slice-sizing contract of a bounded park: the remainder to
// the deadline, clamped by the cap, zero once the deadline has passed.
TEST(RuntimeEventcount, NapSliceIsRemainderClampedByCap) {
  using runtime::RuntimeEventcount;
  // Far from the deadline: the cap rules.
  EXPECT_EQ(RuntimeEventcount::nap_slice_us(0, 10'000),
            RuntimeEventcount::kMaxNapSliceUs);
  EXPECT_EQ(RuntimeEventcount::nap_slice_us(0, 1'000, /*cap_us=*/50), 50u);
  // Near the deadline: only the remainder, never the cap.
  EXPECT_EQ(RuntimeEventcount::nap_slice_us(900, 1'000), 100u);
  EXPECT_EQ(RuntimeEventcount::nap_slice_us(999, 1'000, /*cap_us=*/50), 1u);
  // At or past the deadline: no sleep at all.
  EXPECT_EQ(RuntimeEventcount::nap_slice_us(1'000, 1'000), 0u);
  EXPECT_EQ(RuntimeEventcount::nap_slice_us(2'000, 1'000), 0u);
}

// Regression test for the bounded-sleep bug: the transports used to
// size each nap from a clock reading taken before the previous sleep,
// so a spurious wake near a timer deadline re-parked for a full slice
// past it. The fix recomputes the remaining budget from the CURRENT
// clock on every iteration. With an owner clock that jumps straight to
// the deadline after a few reads and a deliberately enormous slice cap,
// the fixed implementation returns after microseconds of real sleep; an
// implementation that reuses a stale budget sleeps out the cap.
TEST(RuntimeEventcount, BoundedWaitRechecksDeadline) {
  runtime::RuntimeEventcount ec;
  const std::uint32_t seen = ec.prepare();
  // Owner clock: 0, 100, ... then pinned past the 250us deadline. Every
  // slice the fixed code requests is <= 150us of real sleep even though
  // the cap would allow half a second.
  std::uint64_t fake_now_us = 0;
  const auto now_fn = [&fake_now_us] {
    const std::uint64_t now = fake_now_us;
    fake_now_us += 100;
    return now;
  };
  const auto start = std::chrono::steady_clock::now();
  ec.wait_until(seen, /*deadline_us=*/250, now_fn, /*cap_us=*/500'000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  // Requested sleeps total 450us; allow generous scheduler slack but
  // stay far under the 500ms cap a stale-budget sleep would burn.
  EXPECT_LT(elapsed_us, 250'000);
  EXPECT_EQ(fake_now_us, 400u);  // reads at 0, 100, 200, 300(>deadline)

  // And a moved sequence word short-circuits the park entirely: no
  // clock reads, no sleep.
  ec.notify();
  std::uint64_t reads = 0;
  ec.wait_until(seen, /*deadline_us=*/1'000'000,
                [&reads] {
                  ++reads;
                  return std::uint64_t{0};
                },
                /*cap_us=*/500'000);
  EXPECT_EQ(reads, 0u);
}

}  // namespace
}  // namespace dynvote::obs
