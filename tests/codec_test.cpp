// Unit tests: the binary codec — round trips, bounds checking, malformed
// input rejection.
#include <gtest/gtest.h>

#include <limits>

#include "util/codec.hpp"

namespace dynvote {
namespace {

TEST(Codec, RoundTripsScalars) {
  Encoder enc;
  enc.put_u8(0xAB);
  enc.put_u32(0xDEADBEEF);
  enc.put_u64(0x0123456789ABCDEFULL);
  enc.put_i64(-42);
  enc.put_bool(true);
  enc.put_bool(false);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xAB);
  EXPECT_EQ(dec.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(dec.get_i64(), -42);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_TRUE(dec.exhausted());
}

TEST(Codec, RoundTripsVarints) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16383,
                                  16384,
                                  std::numeric_limits<std::uint64_t>::max()};
  Encoder enc;
  for (auto v : values) enc.put_varint(v);
  Decoder dec(enc.bytes());
  for (auto v : values) EXPECT_EQ(dec.get_varint(), v);
  EXPECT_TRUE(dec.exhausted());
}

TEST(Codec, VarintCompactness) {
  Encoder enc;
  enc.put_varint(5);
  EXPECT_EQ(enc.size(), 1u);
  Encoder enc2;
  enc2.put_varint(200);
  EXPECT_EQ(enc2.size(), 2u);
}

TEST(Codec, RoundTripsStrings) {
  Encoder enc;
  enc.put_string("");
  enc.put_string("hello");
  enc.put_string(std::string(1000, 'x'));
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_EQ(dec.get_string(), "hello");
  EXPECT_EQ(dec.get_string(), std::string(1000, 'x'));
}

TEST(Codec, RoundTripsProcessSets) {
  Encoder enc;
  enc.put_process_set(ProcessSet::of({5, 1, 9}));
  enc.put_process_set(ProcessSet{});
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_process_set(), ProcessSet::of({1, 5, 9}));
  EXPECT_EQ(dec.get_process_set(), ProcessSet{});
}

TEST(Codec, RoundTripsOptionals) {
  Encoder enc;
  std::optional<std::uint64_t> present = 99, absent;
  enc.put_optional(present, [&](std::uint64_t v) { enc.put_u64(v); });
  enc.put_optional(absent, [&](std::uint64_t v) { enc.put_u64(v); });
  Decoder dec(enc.bytes());
  auto a = dec.get_optional<std::uint64_t>([&] { return dec.get_u64(); });
  auto b = dec.get_optional<std::uint64_t>([&] { return dec.get_u64(); });
  EXPECT_EQ(a, 99u);
  EXPECT_EQ(b, std::nullopt);
}

TEST(Codec, ThrowsOnTruncatedInput) {
  Encoder enc;
  enc.put_u64(7);
  std::vector<std::uint8_t> bytes = enc.bytes();
  bytes.pop_back();
  Decoder dec(bytes);
  EXPECT_THROW(dec.get_u64(), CodecError);
}

TEST(Codec, ThrowsOnBadBool) {
  const std::vector<std::uint8_t> bytes{2};
  Decoder dec(bytes);
  EXPECT_THROW(dec.get_bool(), CodecError);
}

TEST(Codec, ThrowsOnOversizedLengthPrefix) {
  // A set claiming 1000 entries with a 2-byte body.
  Encoder enc;
  enc.put_varint(1000);
  enc.put_u8(1);
  enc.put_u8(2);
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.get_process_set(), CodecError);
}

TEST(Codec, ThrowsOnVarintOverflow) {
  // 11 continuation bytes exceed 64 bits.
  const std::vector<std::uint8_t> bytes(11, 0xFF);
  Decoder dec(bytes);
  EXPECT_THROW(dec.get_varint(), CodecError);
}

TEST(Codec, ThrowsOnProcessIdOutOfRange) {
  Encoder enc;
  enc.put_varint(0x1'0000'0000ULL);  // > 32-bit
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.get_process_id(), CodecError);
}

TEST(Codec, RemainingTracksPosition) {
  Encoder enc;
  enc.put_u32(1);
  enc.put_u32(2);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.remaining(), 8u);
  dec.get_u32();
  EXPECT_EQ(dec.remaining(), 4u);
}

}  // namespace
}  // namespace dynvote
