// Integration tests: dynamically changing quorum requirements (paper
// section 6) — joins on the fly, W/A admission, Min_Quorum over the
// grown participant set.
#include <gtest/gtest.h>

#include "dv/basic_protocol.hpp"
#include "harness/cluster.hpp"

namespace dynvote {
namespace {

ClusterOptions dynamic_options(std::size_t min_quorum = 1,
                               std::uint64_t seed = 31) {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 3;  // core = {0,1,2}
  options.config.min_quorum = min_quorum;
  options.config.dynamic_participants = true;
  options.sim.seed = seed;
  return options;
}

const ProtocolState& state_of(Cluster& cluster, std::uint32_t p) {
  return dynamic_cast<const BasicDvProtocol&>(cluster.protocol(ProcessId(p)))
      .state();
}

TEST(DynamicParticipants, JoinerStartsPendingNotAdmitted) {
  Cluster cluster(dynamic_options());
  cluster.add_process(ProcessId(7));
  const auto& state = state_of(cluster, 7);
  EXPECT_EQ(state.participants.admitted(), ProcessSet::of({0, 1, 2}));
  EXPECT_EQ(state.participants.pending(), ProcessSet::of({7}));
  EXPECT_FALSE(state.last_primary.has_value());  // (∞, -1)
}

TEST(DynamicParticipants, LoneJoinerCannotForm) {
  Cluster cluster(dynamic_options());
  cluster.add_process(ProcessId(7));
  cluster.partition({ProcessSet::of({7}), ProcessSet::of({0, 1, 2})});
  cluster.settle();
  EXPECT_FALSE(cluster.protocol(ProcessId(7)).is_primary());
  EXPECT_TRUE(cluster.protocol(ProcessId(0)).is_primary());
}

TEST(DynamicParticipants, JoinerAdmittedWhenSessionForms) {
  Cluster cluster(dynamic_options());
  cluster.start();
  cluster.add_process(ProcessId(7));
  cluster.merge();
  cluster.settle();
  const auto primary = cluster.live_primary();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(primary->members, ProcessSet::of({0, 1, 2, 7}));
  for (std::uint32_t p : {0u, 1u, 2u, 7u}) {
    EXPECT_EQ(state_of(cluster, p).participants.admitted(),
              ProcessSet::of({0, 1, 2, 7}))
        << "p" << p;
    EXPECT_TRUE(state_of(cluster, p).participants.pending().empty());
  }
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(DynamicParticipants, AdmittedJoinersCountTowardMinQuorum) {
  // Min_Quorum = 2. After {3,4} join and are admitted, a quorum made of
  // the two joiners alone is legal — impossible under the fixed core.
  for (bool dynamic : {true, false}) {
    ClusterOptions options = dynamic_options(2);
    options.config.dynamic_participants = dynamic;
    Cluster cluster(options);
    cluster.start();
    cluster.add_process(ProcessId(3));
    cluster.add_process(ProcessId(4));
    cluster.merge();
    cluster.settle();
    ASSERT_TRUE(cluster.live_primary().has_value());
    EXPECT_EQ(cluster.live_primary()->members, ProcessSet::of({0, 1, 2, 3, 4}));

    // Shrink the quorum chain towards the joiners: {0..4} -> {2,3,4} ->
    // {3,4}.
    cluster.partition({ProcessSet::of({2, 3, 4}), ProcessSet::of({0, 1})});
    cluster.settle();
    if (!dynamic) {
      // Already blocked: |{2,3,4} ∩ W0| = 1 < Min_Quorum = 2. Only the
      // grown participant set makes this component viable.
      EXPECT_FALSE(cluster.protocol(ProcessId(3)).is_primary());
      EXPECT_TRUE(cluster.checker().check_all().empty());
      continue;
    }
    ASSERT_TRUE(cluster.protocol(ProcessId(3)).is_primary());
    cluster.partition({ProcessSet::of({3, 4}), ProcessSet::of({0, 1}),
                       ProcessSet::of({2})});
    cluster.settle();
    // |{3,4} ∩ W| = 2 >= Min_Quorum: the joiners alone carry the primary.
    EXPECT_TRUE(cluster.protocol(ProcessId(3)).is_primary());
    EXPECT_TRUE(cluster.protocol(ProcessId(4)).is_primary());
    EXPECT_TRUE(cluster.checker().check_all().empty());
  }
}

TEST(DynamicParticipants, UnconditionalClauseUsesGrownSet) {
  // W grows to 5; Min_Quorum = 2. Drive the primary down to {3,4}, then
  // reconnect {0,1,2,3}: NOT a majority of {3,4} (exactly half, and the
  // top-ranked p4 is absent) — only the unconditional clause
  // |M ∩ WA| = 4 > |WA| − Min_Quorum = 3 lets the system proceed.
  Cluster cluster(dynamic_options(2));
  cluster.start();
  cluster.add_process(ProcessId(3));
  cluster.add_process(ProcessId(4));
  cluster.merge();
  cluster.settle();
  ASSERT_EQ(state_of(cluster, 0).participants.admitted().size(), 5u);

  cluster.partition({ProcessSet::of({2, 3, 4}), ProcessSet::of({0, 1})});
  cluster.settle();
  cluster.partition({ProcessSet::of({3, 4}), ProcessSet::of({2}),
                     ProcessSet::of({0, 1})});
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value());
  ASSERT_EQ(cluster.live_primary()->members, ProcessSet::of({3, 4}));

  cluster.partition({ProcessSet::of({0, 1, 2, 3}), ProcessSet::of({4})});
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value());
  EXPECT_EQ(cluster.live_primary()->members, ProcessSet::of({0, 1, 2, 3}));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(DynamicParticipants, SequentialJoinsGrowWMonotonically) {
  Cluster cluster(dynamic_options());
  cluster.start();
  ProcessSet expected = ProcessSet::of({0, 1, 2});
  for (std::uint32_t joiner : {10u, 11u, 12u, 13u}) {
    cluster.add_process(ProcessId(joiner));
    cluster.merge();
    cluster.settle();
    expected.insert(ProcessId(joiner));
    EXPECT_EQ(state_of(cluster, 0).participants.admitted(), expected);
    ASSERT_TRUE(cluster.live_primary().has_value());
    EXPECT_EQ(cluster.live_primary()->members, expected);
  }
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(DynamicParticipants, JoinerNotAdmittedIfSessionAborts) {
  // The joiner meets only a minority of the core: the session cannot
  // form, so the joiner must remain pending (it merged into A, not W).
  Cluster cluster(dynamic_options());
  cluster.start();
  cluster.add_process(ProcessId(7));
  cluster.partition({ProcessSet::of({2, 7}), ProcessSet::of({0, 1})});
  cluster.settle();
  EXPECT_FALSE(cluster.protocol(ProcessId(7)).is_primary());
  const auto& state = state_of(cluster, 2);
  EXPECT_EQ(state.participants.admitted(), ProcessSet::of({0, 1, 2}));
  EXPECT_EQ(state.participants.pending(), ProcessSet::of({7}));
  EXPECT_TRUE(cluster.checker().check_all().empty());
}

TEST(DynamicParticipants, ConsistencyAcrossJoinsAndPartitions) {
  Cluster cluster(dynamic_options(1, 77));
  cluster.start();
  cluster.add_process(ProcessId(3));
  cluster.merge();
  cluster.settle();
  cluster.partition({ProcessSet::of({0, 3}), ProcessSet::of({1, 2})});
  cluster.settle();
  cluster.add_process(ProcessId(4));
  cluster.merge();
  cluster.settle();
  cluster.partition({ProcessSet::of({3, 4}), ProcessSet::of({0, 1, 2})});
  cluster.settle();
  cluster.merge();
  cluster.settle();
  ASSERT_TRUE(cluster.live_primary().has_value());
  EXPECT_EQ(cluster.live_primary()->members, ProcessSet::of({0, 1, 2, 3, 4}));
  const auto violations = cluster.checker().check_all();
  EXPECT_TRUE(violations.empty()) << to_string(violations);
}

}  // namespace
}  // namespace dynvote
