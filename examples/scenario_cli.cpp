// scenario_cli: drive a simulated cluster from a scenario script.
//
// Usage:
//   ./scenario_cli                 # runs the built-in demo script
//   ./scenario_cli script.dvs      # runs your script
//   echo "..." | ./scenario_cli -  # reads the script from stdin
//
// Script language (one command per line, '#' starts a comment):
//
//   protocol <basic|optimized|centralized|static|naive|blocking|hybrid|3pc>
//   n <count>                  core group size (default 5)
//   minquorum <k>              Min_Quorum (default 1)
//   dynamic                    enable section-6 dynamic participants
//   seed <value>               simulator seed (default 1)
//   start                      connect everyone and settle
//   partition g1 | g2 | ...    e.g.  partition 0,1,2 | 3,4
//   merge                      reconnect all live processes
//   crash <p>      recover <p>      destroy-disk <p>
//   join <p>                   add a non-core process (use merge after)
//   drop <type-substr> <p> [count]  drop messages matching type to p
//   clear-drops
//   write <p> <key> <value>    replicated-KV write through process p
//   read <p> <key>
//   settle                     run the simulation to quiescence
//   status                     per-process primary state
//   check                      run the consistency checker
//   trace [k]                  print the last k protocol events (default 12)
//
// Configuration commands must precede `start`/the first topology command.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "app/replicated_kv.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"

using namespace dynvote;

namespace {

const char* kDemoScript = R"(# built-in demo: the paper's section-1 scenario
protocol optimized
n 5
start
status
# c (=p2) will miss the attempt round of the next session
drop dv.attempt 2 2
partition 0,1,2 | 3,4
settle
status
clear-drops
partition 0,1 | 2,3,4
settle
status
check
trace 8
merge
settle
status
check
)";

struct Repl {
  ClusterOptions options;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<FaultInjector> faults;
  std::unique_ptr<app::KvStore> store;
  int line_number = 0;

  Cluster& live() {
    if (!cluster) {
      cluster = std::make_unique<Cluster>(options);
      faults = std::make_unique<FaultInjector>(cluster->sim().network());
      store = std::make_unique<app::KvStore>(*cluster);
    }
    return *cluster;
  }

  void fail(const std::string& what) {
    std::fprintf(stderr, "line %d: %s\n", line_number, what.c_str());
  }

  static std::optional<ProtocolKind> parse_kind(const std::string& name) {
    static const std::map<std::string, ProtocolKind> kinds = {
        {"basic", ProtocolKind::kBasic},
        {"optimized", ProtocolKind::kOptimized},
        {"centralized", ProtocolKind::kCentralized},
        {"static", ProtocolKind::kStaticMajority},
        {"naive", ProtocolKind::kNaiveDynamic},
        {"last-attempt", ProtocolKind::kLastAttemptOnly},
        {"blocking", ProtocolKind::kBlockingDynamic},
        {"hybrid", ProtocolKind::kHybridJm},
        {"3pc", ProtocolKind::kThreePhaseRecovery},
    };
    auto it = kinds.find(name);
    if (it == kinds.end()) return std::nullopt;
    return it->second;
  }

  /// Parses "0,1,2 | 3,4" into disjoint groups.
  static std::optional<std::vector<ProcessSet>> parse_groups(
      const std::string& text) {
    std::vector<ProcessSet> groups;
    std::stringstream chunks(text);
    std::string chunk;
    while (std::getline(chunks, chunk, '|')) {
      ProcessSet group;
      std::stringstream ids(chunk);
      std::string token;
      while (std::getline(ids, token, ',')) {
        try {
          std::size_t pos = 0;
          const unsigned long value = std::stoul(token, &pos);
          group.insert(ProcessId(static_cast<std::uint32_t>(value)));
        } catch (const std::exception&) {
          return std::nullopt;
        }
      }
      if (group.empty()) return std::nullopt;
      groups.push_back(group);
    }
    return groups.empty() ? std::nullopt : std::make_optional(groups);
  }

  void status() {
    Cluster& c = live();
    std::printf("t=%lluus\n", static_cast<unsigned long long>(c.sim().now()));
    for (ProcessId p : c.all_processes()) {
      if (!c.sim().network().alive(p)) {
        std::printf("  %s: crashed\n", to_string(p).c_str());
      } else if (c.protocol(p).is_primary()) {
        std::printf("  %s: PRIMARY %s\n", to_string(p).c_str(),
                    c.protocol(p).primary_session()->to_string().c_str());
      } else {
        std::printf("  %s: -\n", to_string(p).c_str());
      }
    }
  }

  bool handle(const std::string& raw) {
    std::string line = raw.substr(0, raw.find('#'));
    std::stringstream in(line);
    std::string command;
    if (!(in >> command)) return true;  // blank

    auto need_u32 = [&](std::uint32_t& out) {
      unsigned long v;
      if (!(in >> v)) return false;
      out = static_cast<std::uint32_t>(v);
      return true;
    };

    if (command == "protocol") {
      std::string name;
      in >> name;
      const auto kind = parse_kind(name);
      if (!kind) {
        fail("unknown protocol '" + name + "'");
        return true;
      }
      options.kind = *kind;
    } else if (command == "n") {
      std::uint32_t n;
      if (need_u32(n)) options.n = n;
    } else if (command == "minquorum") {
      std::uint32_t k;
      if (need_u32(k)) options.config.min_quorum = k;
    } else if (command == "dynamic") {
      options.config.dynamic_participants = true;
    } else if (command == "seed") {
      std::uint64_t seed;
      if (in >> seed) options.sim.seed = seed;
    } else if (command == "start") {
      live().start();
    } else if (command == "partition") {
      std::string rest;
      std::getline(in, rest);
      const auto groups = parse_groups(rest);
      if (!groups) {
        fail("cannot parse groups: '" + rest + "'");
        return true;
      }
      try {
        live().partition(*groups);
        live().settle();
      } catch (const std::exception& e) {
        fail(e.what());
      }
    } else if (command == "merge") {
      live().merge();
      live().settle();
    } else if (command == "crash" || command == "recover" ||
               command == "destroy-disk" || command == "join") {
      std::uint32_t p;
      if (!need_u32(p)) {
        fail("missing process id");
        return true;
      }
      if (command == "crash") live().crash(ProcessId(p));
      if (command == "recover") live().recover(ProcessId(p));
      if (command == "destroy-disk") {
        live().sim().crash_and_destroy_disk(ProcessId(p));
      }
      if (command == "join") {
        live().add_process(ProcessId(p));
        store = std::make_unique<app::KvStore>(live());  // rebuild replicas
      }
      live().settle();
    } else if (command == "drop") {
      std::string type;
      std::uint32_t p;
      int count = -1;
      in >> type;
      if (!need_u32(p)) {
        fail("drop needs: <type> <process> [count]");
        return true;
      }
      in >> count;
      live();
      faults->drop_to(ProcessId(p), type, count);
    } else if (command == "clear-drops") {
      live();
      faults->clear();
    } else if (command == "write") {
      std::uint32_t p;
      std::string key, value;
      if (!need_u32(p) || !(in >> key >> value)) {
        fail("write needs: <process> <key> <value>");
        return true;
      }
      live();
      const auto version = store->write(ProcessId(p), key, value);
      std::printf("write %s=%s via p%u: %s\n", key.c_str(), value.c_str(), p,
                  version ? version->to_string().c_str()
                          : "REFUSED (not in primary)");
      store->sync_primary();
    } else if (command == "read") {
      std::uint32_t p;
      std::string key;
      if (!need_u32(p) || !(in >> key)) {
        fail("read needs: <process> <key>");
        return true;
      }
      live();
      const auto value = store->replica(ProcessId(p)).read(key);
      std::printf("read %s via p%u: %s\n", key.c_str(), p,
                  value ? value->c_str() : "(none)");
    } else if (command == "settle") {
      live().settle();
    } else if (command == "status") {
      status();
    } else if (command == "check") {
      const auto violations = live().checker().check_all();
      if (violations.empty()) {
        std::printf("check: consistent (no split brain, ≺ total)\n");
      } else {
        std::printf("check: %zu violation(s)\n%s", violations.size(),
                    to_string(violations).c_str());
      }
      const auto divergences = store->audit();
      if (!divergences.empty()) {
        std::printf("store audit: %zu divergence(s)\n", divergences.size());
      }
    } else if (command == "trace") {
      std::size_t k = 12;
      in >> k;
      const auto& entries = live().trace().entries();
      const std::size_t from = entries.size() > k ? entries.size() - k : 0;
      for (std::size_t i = from; i < entries.size(); ++i) {
        std::printf("  [%7llu] %s %s\n",
                    static_cast<unsigned long long>(entries[i].time),
                    to_string(entries[i].process).c_str(),
                    entries[i].text.c_str());
      }
    } else if (command == "quit" || command == "exit") {
      return false;
    } else {
      fail("unknown command '" + command + "'");
    }
    return true;
  }

  int run(std::istream& in) {
    std::string line;
    while (std::getline(in, line)) {
      ++line_number;
      std::printf(">> %s\n", line.c_str());
      if (!handle(line)) break;
    }
    return 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Repl repl;
  if (argc < 2) {
    std::puts("(no script given: running the built-in demo; pass a file or '-' "
              "for stdin)\n");
    std::istringstream demo(kDemoScript);
    return repl.run(demo);
  }
  if (std::string(argv[1]) == "-") return repl.run(std::cin);
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  return repl.run(file);
}
