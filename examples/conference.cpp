// Conference: the paper's motivating dynamic-membership application
// ("conferencing applications and interactive games wish to allow users
// to freely join and leave, without restarting the entire system" —
// paper section 1, realized by the section-6 protocol).
//
// A conference is founded by three core processes. Participants join on
// the fly, are admitted into the participant set W through formed
// sessions, and eventually the founders all leave — the conference keeps
// going, carried entirely by people who weren't there at the start.
#include <cstdio>

#include "dv/basic_protocol.hpp"
#include "harness/cluster.hpp"

using namespace dynvote;

namespace {

void show(Cluster& cluster, const char* moment) {
  std::printf("--- %s\n", moment);
  const auto primary = cluster.live_primary();
  std::printf("  conference floor: %s\n",
              primary ? primary->members.to_string().c_str() : "(none)");
  const auto& state =
      dynamic_cast<const BasicDvProtocol&>(
          cluster.protocol(primary && !primary->members.empty()
                               ? primary->members.members().front()
                               : ProcessId(0)))
          .state();
  std::printf("  participants W = %s, pending A = %s\n",
              state.participants.admitted().to_string().c_str(),
              state.participants.pending().to_string().c_str());
}

}  // namespace

int main() {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 3;  // founders p0, p1, p2
  options.config.min_quorum = 2;
  options.config.dynamic_participants = true;  // the section-6 protocol
  options.sim.seed = 21;
  Cluster cluster(options);
  cluster.start();
  show(cluster, "conference founded by p0, p1, p2");

  // Guests join one at a time. Each join is just a membership change;
  // the join is complete when a session forms that includes the guest
  // (which also admits it into W).
  for (std::uint32_t guest : {3u, 4u, 5u, 6u}) {
    cluster.add_process(ProcessId(guest));
    cluster.merge();
    cluster.settle();
  }
  show(cluster, "guests p3..p6 joined and were admitted");

  // A network hiccup cuts off two guests; the conference continues with
  // the majority and takes them back when the network heals.
  cluster.partition({ProcessSet::of({0, 1, 2, 3, 4}), ProcessSet::of({5, 6})});
  cluster.settle();
  show(cluster, "p5, p6 dropped by the network");
  cluster.merge();
  cluster.settle();
  show(cluster, "p5, p6 reconnected");

  // The founders leave (voluntarily: they simply disconnect). Because
  // the guests are admitted participants, |quorum ∩ W| >= Min_Quorum is
  // satisfiable without any founder — the conference outlives them.
  // Under the fixed-core rule of paper section 4.1 this would be the end
  // of the system.
  cluster.partition({ProcessSet::of({3, 4, 5, 6}), ProcessSet::of({0, 1, 2})});
  cluster.settle();
  show(cluster, "all three founders left");

  // And it keeps adapting: another guest arrives afterwards.
  cluster.add_process(ProcessId(7));
  cluster.partition({ProcessSet::of({3, 4, 5, 6, 7}), ProcessSet::of({0, 1, 2})});
  cluster.settle();
  show(cluster, "p7 joined the founder-less conference");

  const auto violations = cluster.checker().check_all();
  std::printf("\nconsistency check: %s\n",
              violations.empty() ? "every floor handover totally ordered"
                                 : to_string(violations).c_str());
  return violations.empty() ? 0 : 1;
}
