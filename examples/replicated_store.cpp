// Replicated store: primary-copy replication on the primary-component
// service — the integration the paper's introduction motivates
// (replication algorithms [16, 9], transaction management [15]).
//
// A bank-style scenario: a replicated key-value store accepts writes
// only inside the primary component. We drive it through a partition,
// show the minority refusing writes (no split brain, no lost updates),
// heal, and audit. Then we re-run the same story on the *naive* dynamic
// voting baseline and watch the audit catch real divergence.
#include <cstdio>

#include "app/replicated_kv.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"

using namespace dynvote;
using namespace dynvote::app;

namespace {

void banner(const char* text) { std::printf("\n=== %s ===\n", text); }

int run_consistent() {
  banner("our protocol: writes gated on the primary component");
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = 11;
  Cluster cluster(options);
  cluster.start();
  KvStore store(cluster);

  // Normal operation: write at p0, state-transfer within the primary.
  auto v1 = store.write(ProcessId(0), "balance", "100");
  store.sync_primary();
  std::printf("p0 writes balance=100 -> accepted as %s\n",
              v1->to_string().c_str());
  std::printf("p4 reads balance=%s after state transfer\n",
              store.replica(ProcessId(4)).read("balance")->c_str());

  // Partition: the majority side continues, the minority cannot write.
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  auto v2 = store.write(ProcessId(1), "balance", "250");
  store.sync_primary();
  auto minority = store.write(ProcessId(4), "balance", "999");
  std::printf("after partition {p0,p1,p2}|{p3,p4}:\n");
  std::printf("  p1 writes balance=250 -> %s\n",
              v2 ? ("accepted as " + v2->to_string()).c_str() : "REFUSED");
  std::printf("  p4 writes balance=999 -> %s\n",
              minority ? "accepted (BUG!)" : "refused (not in primary)");

  // Heal: the stale side catches up; nothing was lost or overwritten.
  cluster.merge();
  cluster.settle();
  store.sync_primary();
  std::printf("after healing, p4 reads balance=%s\n",
              store.replica(ProcessId(4)).read("balance")->c_str());

  const auto divergences = store.audit();
  std::printf("audit: %zu divergences\n", divergences.size());
  return divergences.empty() ? 0 : 1;
}

void run_naive() {
  banner("the naive baseline on the paper's section-1 scenario");
  ClusterOptions options;
  options.kind = ProtocolKind::kNaiveDynamic;
  options.n = 5;
  options.sim.seed = 11;
  Cluster cluster(options);
  KvStore store(cluster);

  // c (p2) misses the closing message of the {p0,p1,p2} session, then
  // joins {p3,p4}: both sides believe they are the primary.
  FaultInjector faults(cluster.sim().network());
  faults.drop_to(ProcessId(2), "dv.info", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();

  auto left = store.write(ProcessId(0), "balance", "100");
  auto right = store.write(ProcessId(2), "balance", "999");
  std::printf("p0 writes balance=100 -> %s\n",
              left ? "accepted" : "refused");
  std::printf("p2 writes balance=999 -> %s  <- concurrently!\n",
              right ? "accepted" : "refused");

  const auto divergences = store.audit();
  std::printf("audit: %zu divergences\n", divergences.size());
  for (const auto& d : divergences) {
    std::printf("  key '%s': %s\n", d.key.c_str(), d.detail.c_str());
  }
  std::printf("(this is exactly the inconsistency the attempt step and the\n"
              " ambiguous-session record are there to prevent)\n");
}

}  // namespace

int main() {
  const int rc = run_consistent();
  run_naive();
  return rc;
}
