// Partition healing walkthrough: the paper's section-1 scenario, fully
// narrated. Prints the protocol's own event trace so you can watch the
// attempt step do its job message by message.
//
// The scenario: {a,b,c,d,e} split into {a,b,c} | {d,e}; a and b complete
// the {a,b,c} session while c detaches before receiving the last
// message; then a,b continue alone as {a,b} while c joins d,e. The
// ambiguous-session record at c is what keeps {c,d,e} from forming a
// second primary.
#include <cstdio>

#include "dv/basic_protocol.hpp"
#include "harness/cluster.hpp"
#include "harness/scenario.hpp"

using namespace dynvote;

namespace {

void print_trace(Cluster& cluster, SimTime since) {
  for (const auto& entry : cluster.trace().entries()) {
    if (entry.time < since) continue;
    std::printf("  [%7llu us] %s %s\n",
                static_cast<unsigned long long>(entry.time),
                to_string(entry.process).c_str(), entry.text.c_str());
  }
}

}  // namespace

int main() {
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.sim.seed = 31;
  Cluster cluster(options);
  FaultInjector faults(cluster.sim().network());

  std::puts("step 0: all five processes form the initial primary");
  cluster.start();
  print_trace(cluster, 0);

  std::puts("\nstep 1: partition {a,b,c} | {d,e}; c's copies of the attempt");
  std::puts("        round are lost (c 'detaches before the last message')");
  SimTime mark = cluster.sim().now();
  faults.drop_to(ProcessId(2), "dv.attempt", 2);
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  faults.clear();
  print_trace(cluster, mark);
  {
    const auto& c_state =
        dynamic_cast<const BasicDvProtocol&>(cluster.protocol(ProcessId(2)))
            .state();
    std::printf("\n  c's durable state now: %s\n", c_state.to_string().c_str());
    std::puts("  (the '-' marks c's own knowledge that *it* did not form the");
    std::puts("   session; whether a or b formed it is unknown — ambiguous)");
  }

  std::puts("\nstep 2: the network shifts to {a,b} | {c,d,e}");
  mark = cluster.sim().now();
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2, 3, 4})});
  cluster.settle();
  print_trace(cluster, mark);

  std::puts("\noutcome:");
  const auto primary = cluster.live_primary();
  std::printf("  live primary: %s\n",
              primary ? primary->to_string().c_str() : "(none)");
  std::puts("  {c,d,e} was rejected because it is not a Sub_Quorum of the");
  std::puts("  ambiguous {a,b,c} attempt c still holds — exactly the paper's");
  std::puts("  resolution of its 'typical problematic scenario'.");

  std::puts("\nstep 3: everything heals; c learns the session's fate through");
  std::puts("        Last_Formed gossip and the single primary resumes");
  mark = cluster.sim().now();
  cluster.merge();
  cluster.settle();
  print_trace(cluster, mark);

  const auto violations = cluster.checker().check_all();
  std::printf("\nconsistency check: %s\n",
              violations.empty() ? "clean" : to_string(violations).c_str());
  return violations.empty() ? 0 : 1;
}
