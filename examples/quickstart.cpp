// Quickstart: five processes maintain a primary component through a
// partition and a merge.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// What it shows:
//   * constructing a simulated cluster running the optimized protocol;
//   * querying the PrimaryComponentService ("am I in the primary?");
//   * dynamic voting in action: {p0,p1,p2} keeps a primary that a static
//     majority system would also keep — and then {p0,p1} keeps one that
//     static majority would NOT (2 of 5 is no majority, but it is a
//     majority of the previous quorum {p0,p1,p2}).
#include <cstdio>

#include "harness/cluster.hpp"

using namespace dynvote;

namespace {

void report(Cluster& cluster, const char* moment) {
  std::printf("--- %s\n", moment);
  for (ProcessId p : cluster.all_processes()) {
    PrimaryComponentService service = cluster.service(p);
    if (!cluster.sim().network().alive(p)) {
      std::printf("  %s: crashed\n", to_string(p).c_str());
    } else if (service.in_primary()) {
      std::printf("  %s: PRIMARY, session %s\n", to_string(p).c_str(),
                  service.primary()->to_string().c_str());
    } else {
      std::printf("  %s: not in the primary component\n",
                  to_string(p).c_str());
    }
  }
}

}  // namespace

int main() {
  // A cluster of five core processes running the paper's optimized
  // protocol over the simulated partitionable network.
  ClusterOptions options;
  options.kind = ProtocolKind::kOptimized;
  options.n = 5;
  options.config.min_quorum = 1;
  options.sim.seed = 1;
  Cluster cluster(options);

  // Connect everyone and let the first session form.
  cluster.start();
  report(cluster, "all five connected");

  // Partition: {p0,p1,p2} | {p3,p4}. The majority of the previous quorum
  // carries the primary; the minority knows it is not the primary.
  cluster.partition({ProcessSet::of({0, 1, 2}), ProcessSet::of({3, 4})});
  cluster.settle();
  report(cluster, "after partition {p0,p1,p2} | {p3,p4}");

  // Deepen the partition: {p0,p1} | {p2}. Two of five is NOT a static
  // majority — but it IS a majority of the previous quorum {p0,p1,p2}.
  // This is the whole point of dynamic voting.
  cluster.partition({ProcessSet::of({0, 1}), ProcessSet::of({2}),
                     ProcessSet::of({3, 4})});
  cluster.settle();
  report(cluster, "after deepening to {p0,p1} | {p2} | {p3,p4}");

  // Heal everything: one primary again, and the total order of primary
  // components is intact (the checker verifies it).
  cluster.merge();
  cluster.settle();
  report(cluster, "after healing");

  const auto violations = cluster.checker().check_all();
  std::printf("\nconsistency check: %s\n",
              violations.empty() ? "all primary components totally ordered, no "
                                   "split brain"
                                 : to_string(violations).c_str());
  return violations.empty() ? 0 : 1;
}
